#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/workload/request_model.h"
#include "src/workload/zipf.h"

namespace trimcaching::workload {
namespace {

using support::Rng;

// ----------------------------------------------------------------------- Zipf

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution zipf(30, 0.8);
  double sum = 0;
  for (std::size_t r = 0; r < zipf.size(); ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfDecreasing) {
  const ZipfDistribution zipf(100, 1.2);
  for (std::size_t r = 1; r < zipf.size(); ++r) {
    EXPECT_LT(zipf.pmf(r), zipf.pmf(r - 1));
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
}

TEST(Zipf, RatioMatchesPowerLaw) {
  const ZipfDistribution zipf(50, 1.0);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(9), 10.0, 1e-9);
}

TEST(Zipf, SamplerMatchesPmf) {
  const ZipfDistribution zipf(5, 1.0);
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int t = 0; t < n; ++t) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(Zipf, InvalidArgs) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -0.1), std::invalid_argument);
}

// -------------------------------------------------------------- Request model

TEST(RequestModel, PerUserMassIsOne) {
  Rng rng(1);
  const auto rm = RequestModel::generate(7, 20, RequestConfig{}, rng);
  for (UserId k = 0; k < 7; ++k) {
    double sum = 0;
    for (ModelId i = 0; i < 20; ++i) sum += rm.probability(k, i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_NEAR(rm.total_mass(), 7.0, 1e-9);
}

TEST(RequestModel, SparsityLimitsInterestSet) {
  Rng rng(2);
  RequestConfig config;
  config.models_per_user = 9;
  const auto rm = RequestModel::generate(5, 30, config, rng);
  for (UserId k = 0; k < 5; ++k) {
    int nonzero = 0;
    for (ModelId i = 0; i < 30; ++i) {
      if (rm.probability(k, i) > 0) ++nonzero;
    }
    EXPECT_EQ(nonzero, 9);
  }
}

TEST(RequestModel, DeadlinesInConfiguredRange) {
  Rng rng(3);
  RequestConfig config;
  const auto rm = RequestModel::generate(4, 10, config, rng);
  for (UserId k = 0; k < 4; ++k) {
    for (ModelId i = 0; i < 10; ++i) {
      EXPECT_GE(rm.deadline_s(k, i), config.deadline_min_s);
      EXPECT_LE(rm.deadline_s(k, i), config.deadline_max_s);
      EXPECT_GE(rm.inference_s(k, i), config.inference_min_s);
      EXPECT_LE(rm.inference_s(k, i), config.inference_max_s);
      // Inference must never consume the whole deadline with defaults.
      EXPECT_LT(rm.inference_s(k, i), rm.deadline_s(k, i));
    }
  }
}

TEST(RequestModel, GlobalPopularityOrderShared) {
  Rng rng(4);
  RequestConfig config;
  config.per_user_popularity = false;
  const auto rm = RequestModel::generate(6, 15, config, rng);
  // With a global order, every user has identical probabilities.
  for (UserId k = 1; k < 6; ++k) {
    for (ModelId i = 0; i < 15; ++i) {
      EXPECT_DOUBLE_EQ(rm.probability(k, i), rm.probability(0, i));
    }
  }
}

TEST(RequestModel, PerUserPopularityDiffers) {
  Rng rng(5);
  RequestConfig config;
  config.per_user_popularity = true;
  config.zipf_exponent = 1.2;
  const auto rm = RequestModel::generate(4, 20, config, rng);
  bool any_diff = false;
  for (ModelId i = 0; i < 20 && !any_diff; ++i) {
    if (rm.probability(0, i) != rm.probability(1, i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RequestModel, InvalidConfigRejected) {
  Rng rng(6);
  RequestConfig config;
  config.models_per_user = 50;
  EXPECT_THROW((void)RequestModel::generate(3, 30, config, rng), std::invalid_argument);
  config = RequestConfig{};
  config.deadline_min_s = 2.0;  // > max
  EXPECT_THROW((void)RequestModel::generate(3, 30, config, rng), std::invalid_argument);
  EXPECT_THROW((void)RequestModel::generate(0, 30, RequestConfig{}, rng),
               std::invalid_argument);
}

TEST(RequestModel, OutOfRangeAccessThrows) {
  Rng rng(7);
  const auto rm = RequestModel::generate(2, 3, RequestConfig{}, rng);
  EXPECT_THROW((void)rm.probability(2, 0), std::out_of_range);
  EXPECT_THROW((void)rm.probability(0, 3), std::out_of_range);
}

}  // namespace
}  // namespace trimcaching::workload
