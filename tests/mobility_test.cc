#include <gtest/gtest.h>

#include <cmath>

#include "src/mobility/mobility.h"

namespace trimcaching::mobility {
namespace {

using support::Rng;
using wireless::Area;
using wireless::Point;

TEST(MobilityParams, PaperValues) {
  const auto ped = params_for(MobilityClass::kPedestrian);
  EXPECT_DOUBLE_EQ(ped.min_speed_mps, 0.5);
  EXPECT_DOUBLE_EQ(ped.max_speed_mps, 1.8);
  EXPECT_DOUBLE_EQ(ped.max_accel_mps2, 0.3);
  const auto bike = params_for(MobilityClass::kBike);
  EXPECT_DOUBLE_EQ(bike.min_speed_mps, 2.0);
  EXPECT_DOUBLE_EQ(bike.max_speed_mps, 8.0);
  const auto veh = params_for(MobilityClass::kVehicle);
  EXPECT_DOUBLE_EQ(veh.max_speed_mps, 20.0);
  EXPECT_DOUBLE_EQ(veh.max_accel_mps2, 3.0);
}

TEST(MobilityModel, UsersStayInsideArea) {
  Rng rng(1);
  const Area area{1000.0};
  std::vector<Point> initial(20, Point{500, 500});
  std::vector<MobilityClass> classes =
      assign_classes(20, 1.0 / 3, 1.0 / 3, 1.0 / 3, rng);
  MobilityModel model(area, initial, classes, rng);
  for (int slot = 0; slot < 500; ++slot) {
    model.step(5.0, rng);
    for (const auto& p : model.positions()) {
      EXPECT_TRUE(area.contains(p)) << "(" << p.x << "," << p.y << ")";
    }
  }
}

TEST(MobilityModel, SpeedsStayInClassRange) {
  Rng rng(2);
  const Area area{1000.0};
  std::vector<Point> initial(10, Point{500, 500});
  std::vector<MobilityClass> classes(10, MobilityClass::kVehicle);
  MobilityModel model(area, initial, classes, rng);
  for (int slot = 0; slot < 200; ++slot) {
    model.step(5.0, rng);
    for (const auto& user : model.users()) {
      EXPECT_GE(user.speed_mps, 5.5);
      EXPECT_LE(user.speed_mps, 20.0);
    }
  }
}

TEST(MobilityModel, UsersActuallyMove) {
  Rng rng(3);
  const Area area{1000.0};
  std::vector<Point> initial(5, Point{500, 500});
  std::vector<MobilityClass> classes(5, MobilityClass::kPedestrian);
  MobilityModel model(area, initial, classes, rng);
  model.step(5.0, rng);
  for (const auto& p : model.positions()) {
    EXPECT_GT(wireless::distance(p, Point{500, 500}), 0.0);
    // A pedestrian covers at most 1.8 m/s * 5 s = 9 m per slot.
    EXPECT_LE(wireless::distance(p, Point{500, 500}), 9.0 + 1e-9);
  }
}

TEST(MobilityModel, VehiclesCoverMoreGroundThanPedestrians) {
  Rng rng(4);
  const Area area{100000.0};  // huge area: no boundary interference
  std::vector<Point> start(40, Point{50000, 50000});
  std::vector<MobilityClass> classes(40, MobilityClass::kPedestrian);
  for (std::size_t i = 20; i < 40; ++i) classes[i] = MobilityClass::kVehicle;
  MobilityModel model(area, start, classes, rng);
  for (int slot = 0; slot < 100; ++slot) model.step(5.0, rng);
  double ped = 0, veh = 0;
  const auto& users = model.users();
  for (std::size_t i = 0; i < 20; ++i) {
    ped += wireless::distance(users[i].position, Point{50000, 50000});
  }
  for (std::size_t i = 20; i < 40; ++i) {
    veh += wireless::distance(users[i].position, Point{50000, 50000});
  }
  EXPECT_GT(veh, ped);
}

TEST(MobilityModel, Deterministic) {
  const Area area{1000.0};
  std::vector<Point> initial(5, Point{100, 100});
  std::vector<MobilityClass> classes(5, MobilityClass::kBike);
  Rng rng_a(7), rng_b(7);
  MobilityModel a(area, initial, classes, rng_a);
  MobilityModel b(area, initial, classes, rng_b);
  for (int slot = 0; slot < 20; ++slot) {
    a.step(5.0, rng_a);
    b.step(5.0, rng_b);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.positions()[i].x, b.positions()[i].x);
    EXPECT_DOUBLE_EQ(a.positions()[i].y, b.positions()[i].y);
  }
}

TEST(MobilityModel, InputValidation) {
  Rng rng(8);
  const Area area{100.0};
  EXPECT_THROW(MobilityModel(area, {Point{1, 1}}, {}, rng), std::invalid_argument);
  MobilityModel model(area, {Point{1, 1}}, {MobilityClass::kBike}, rng);
  EXPECT_THROW(model.step(0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)assign_classes(5, 0, 0, 0, rng), std::invalid_argument);
}

TEST(AssignClasses, RespectsPureMixes) {
  Rng rng(9);
  const auto all_ped = assign_classes(30, 1, 0, 0, rng);
  for (const auto cls : all_ped) EXPECT_EQ(cls, MobilityClass::kPedestrian);
  const auto all_veh = assign_classes(30, 0, 0, 1, rng);
  for (const auto cls : all_veh) EXPECT_EQ(cls, MobilityClass::kVehicle);
}

}  // namespace
}  // namespace trimcaching::mobility
