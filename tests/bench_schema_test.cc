// Golden-schema lock for the BENCH_*.json perf artifacts.
//
// bench/bench_json.h's writer and strict reader are the single
// serialization path for the perf-trajectory files that tools/bench_diff
// gates CI with. These tests lock the emitted key set — including the
// hit_ratio and duplication_factor columns fig8_scale records for the
// repair pass — so schema drift fails loudly here and in every bench_diff
// run, instead of silently comparing fields that no longer exist. The
// committed fig8_scale baseline is itself checked against the lock.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "bench/bench_json.h"

namespace trimcaching::bench {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Every JSON key that appears in `text`, in no particular order.
std::set<std::string> keys_in(const std::string& text) {
  std::set<std::string> keys;
  const std::regex key_pattern("\"([A-Za-z_0-9]+)\":");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), key_pattern);
       it != std::sregex_iterator(); ++it) {
    keys.insert((*it)[1].str());
  }
  return keys;
}

TEST(BenchJsonSchema, WriterEmitsExactlyTheLockedKeySet) {
  const std::string path = temp_path("bench_schema_full.json");
  JsonRecord full;
  full.name = "kernel_full";
  full.wall_seconds = 0.5;
  full.throughput = 12.0;
  full.threads = 4;
  full.speedup_vs_serial = 3.5;
  full.hit_ratio = 0.75;
  full.duplication_factor = 1.25;
  full.plan_rebuilds = 2.0;
  full.plan_deltas = 10.0;
  full.plan_update_speedup = 4.5;
  full.p50_ms = 120.0;
  full.p95_ms = 480.0;
  full.p99_ms = 950.0;
  full.served_rps = 1250.0;
  full.peak_rss_mb = 640.0;
  full.failovers = 42.0;
  full.aborted = 7.0;
  full.rewarm_s = 12.5;
  write_bench_json(path, {full});

  const std::set<std::string> expected = {
      "schema",  "git_rev",           "hardware_threads", "benchmarks",
      "name",    "wall_seconds",      "throughput",       "threads",
      "speedup_vs_serial", "hit_ratio", "duplication_factor",
      "plan_rebuilds", "plan_deltas", "plan_update_speedup",
      "p50_ms", "p95_ms", "p99_ms", "served_rps", "peak_rss_mb",
      "failovers", "aborted", "rewarm_s"};
  EXPECT_EQ(keys_in(slurp(path)), expected);

  // Optional columns disappear when not recorded; required ones never do.
  const std::string minimal_path = temp_path("bench_schema_minimal.json");
  JsonRecord minimal;
  minimal.name = "kernel_minimal";
  minimal.wall_seconds = 0.1;
  write_bench_json(minimal_path, {minimal});
  const std::set<std::string> required = {"schema", "git_rev", "hardware_threads",
                                          "benchmarks", "name", "wall_seconds",
                                          "throughput", "threads"};
  EXPECT_EQ(keys_in(slurp(minimal_path)), required);
}

TEST(BenchJsonSchema, ReaderRoundTripsValuesAndDefaults) {
  const std::string path = temp_path("bench_schema_roundtrip.json");
  JsonRecord full;
  full.name = "kernel_full";
  full.wall_seconds = 0.5;
  full.throughput = 12.0;
  full.threads = 4;
  full.speedup_vs_serial = 3.5;
  full.hit_ratio = 0.75;
  full.duplication_factor = 1.25;
  full.plan_rebuilds = 2.0;
  full.plan_deltas = 10.0;
  full.plan_update_speedup = 4.5;
  full.p50_ms = 120.0;
  full.p95_ms = 480.0;
  full.p99_ms = 950.0;
  full.served_rps = 1250.0;
  full.peak_rss_mb = 640.0;
  full.failovers = 42.0;
  full.aborted = 7.0;
  full.rewarm_s = 12.5;
  JsonRecord minimal;
  minimal.name = "kernel_minimal";
  minimal.wall_seconds = 0.125;
  write_bench_json(path, {full, minimal});

  const auto records = read_bench_json(path);
  ASSERT_EQ(records.size(), 2u);
  const JsonRecord& f = records.at("kernel_full");
  EXPECT_DOUBLE_EQ(f.wall_seconds, 0.5);
  EXPECT_DOUBLE_EQ(f.throughput, 12.0);
  EXPECT_EQ(f.threads, 4u);
  EXPECT_DOUBLE_EQ(f.speedup_vs_serial, 3.5);
  EXPECT_DOUBLE_EQ(f.hit_ratio, 0.75);
  EXPECT_DOUBLE_EQ(f.duplication_factor, 1.25);
  EXPECT_DOUBLE_EQ(f.plan_rebuilds, 2.0);
  EXPECT_DOUBLE_EQ(f.plan_deltas, 10.0);
  EXPECT_DOUBLE_EQ(f.plan_update_speedup, 4.5);
  EXPECT_DOUBLE_EQ(f.p50_ms, 120.0);
  EXPECT_DOUBLE_EQ(f.p95_ms, 480.0);
  EXPECT_DOUBLE_EQ(f.p99_ms, 950.0);
  EXPECT_DOUBLE_EQ(f.served_rps, 1250.0);
  EXPECT_DOUBLE_EQ(f.peak_rss_mb, 640.0);
  EXPECT_DOUBLE_EQ(f.failovers, 42.0);
  EXPECT_DOUBLE_EQ(f.aborted, 7.0);
  EXPECT_DOUBLE_EQ(f.rewarm_s, 12.5);
  const JsonRecord& m = records.at("kernel_minimal");
  EXPECT_DOUBLE_EQ(m.wall_seconds, 0.125);
  // Absent optional columns keep their "not recorded" defaults.
  EXPECT_DOUBLE_EQ(m.speedup_vs_serial, 0.0);
  EXPECT_LT(m.hit_ratio, 0.0);
  EXPECT_LT(m.duplication_factor, 0.0);
  EXPECT_LT(m.plan_rebuilds, 0.0);
  EXPECT_LT(m.plan_deltas, 0.0);
  EXPECT_DOUBLE_EQ(m.plan_update_speedup, 0.0);
  EXPECT_LT(m.p50_ms, 0.0);
  EXPECT_LT(m.p95_ms, 0.0);
  EXPECT_LT(m.p99_ms, 0.0);
  EXPECT_LT(m.served_rps, 0.0);
  EXPECT_LT(m.peak_rss_mb, 0.0);
  EXPECT_LT(m.failovers, 0.0);
  EXPECT_LT(m.aborted, 0.0);
  EXPECT_LT(m.rewarm_s, 0.0);
}

TEST(BenchJsonSchema, MergePreservesForeignRecordsAndOverwritesByName) {
  // fig6b and fig7 share BENCH_runtime.json: a merge keeps the other
  // binary's records and replaces re-recorded names.
  const std::string path = temp_path("bench_schema_merge.json");
  JsonRecord fig6b;
  fig6b.name = "fig6b_runtime";
  fig6b.wall_seconds = 1.5;
  write_bench_json(path, {fig6b});

  JsonRecord fig7;
  fig7.name = "fig7_100x_plan_delta";
  fig7.wall_seconds = 0.01;
  fig7.plan_update_speedup = 5.0;
  merge_bench_json(path, {fig7});

  auto records = read_bench_json(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records.at("fig6b_runtime").wall_seconds, 1.5);
  EXPECT_DOUBLE_EQ(records.at("fig7_100x_plan_delta").plan_update_speedup, 5.0);

  // Re-recording the same name wins; the foreign record still survives.
  fig7.plan_update_speedup = 6.0;
  merge_bench_json(path, {fig7});
  records = read_bench_json(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records.at("fig7_100x_plan_delta").plan_update_speedup, 6.0);

  // Merging into a missing document just writes it.
  const std::string fresh = temp_path("bench_schema_merge_fresh.json");
  std::remove(fresh.c_str());
  merge_bench_json(fresh, {fig7});
  EXPECT_EQ(read_bench_json(fresh).size(), 1u);
}

TEST(BenchJsonSchema, ReaderFailsLoudlyOnSchemaDrift) {
  // A record whose wall_seconds key was renamed: must throw, naming the key.
  const std::string drifted = temp_path("bench_schema_drifted.json");
  {
    std::ofstream file(drifted);
    file << "{\n  \"schema\": 1,\n  \"git_rev\": \"test\",\n"
            "  \"hardware_threads\": 1,\n  \"benchmarks\": [\n"
            "    {\"name\": \"kernel\", \"walltime\": 0.5, \"throughput\": 0, "
            "\"threads\": 1}\n  ]\n}\n";
  }
  try {
    (void)read_bench_json(drifted);
    FAIL() << "schema drift must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("wall_seconds"), std::string::npos);
  }

  // A document without the schema marker is rejected outright.
  const std::string unversioned = temp_path("bench_schema_unversioned.json");
  {
    std::ofstream file(unversioned);
    file << "{\"benchmarks\": [{\"name\": \"kernel\", \"wall_seconds\": 1, "
            "\"throughput\": 0, \"threads\": 1}]}\n";
  }
  EXPECT_THROW((void)read_bench_json(unversioned), std::runtime_error);

  // No records at all is drift too (an empty gate protects nothing).
  const std::string empty = temp_path("bench_schema_empty.json");
  {
    std::ofstream file(empty);
    file << "{\n  \"schema\": 1,\n  \"benchmarks\": []\n}\n";
  }
  EXPECT_THROW((void)read_bench_json(empty), std::runtime_error);

  EXPECT_THROW((void)read_bench_json(temp_path("does_not_exist.json")),
               std::runtime_error);
}

TEST(BenchJsonSchema, CommittedScaleBaselineMatchesTheLock) {
  // The baseline bench_diff gates CI against must parse under the strict
  // reader and carry all five fig8_scale variants per point, with the
  // hit-ratio and duplication columns the repair pass introduced and the
  // peak_rss_mb column the distributed-tiles memory gate runs against.
  const std::string path = std::string(TRIMCACHING_SOURCE_DIR) +
                           "/bench/baselines/BENCH_scale_baseline.json";
  const auto records = read_bench_json(path);
  for (const std::string point : {"2x", "10x", "100x"}) {
    for (const std::string variant :
         {"untiled_serial", "tiled_serial", "tiled_threaded", "tiled_workers",
          "tiled_repaired"}) {
      const std::string name = "fig8_scale_" + point + "_" + variant;
      ASSERT_TRUE(records.count(name)) << "baseline is missing " << name;
      const JsonRecord& record = records.at(name);
      EXPECT_GT(record.wall_seconds, 0.0) << name;
      EXPECT_GE(record.hit_ratio, 0.0) << name;
      EXPECT_GE(record.duplication_factor, 1.0 - 1e-12) << name;
      if (variant != "tiled_repaired") {
        EXPECT_GT(record.peak_rss_mb, 0.0) << name << " has no sampled RSS";
      }
    }
  }
  // The duplication story the gate tracks: raw tiling duplicates heavily at
  // the 100x point, repair pulls it back under 1.5x.
  EXPECT_GT(records.at("fig8_scale_100x_tiled_serial").duplication_factor, 2.0);
  EXPECT_LT(records.at("fig8_scale_100x_tiled_repaired").duplication_factor, 1.5);
  // The memory story the rss gate tracks: at the 100x point the workers
  // variant's *coordinator* peak sits below the in-process tiled peak —
  // solver working memory moved out of the coordinator process.
  EXPECT_LT(records.at("fig8_scale_100x_tiled_workers").peak_rss_mb,
            records.at("fig8_scale_100x_tiled_threaded").peak_rss_mb);
}

TEST(BenchJsonSchema, CommittedServingBaselineMatchesTheLock) {
  // The serving baseline the hit_ratio gate runs against: every load/policy
  // record must parse under the strict reader and carry the serving columns
  // (empirical hit ratio, latency quantiles, served throughput). The values
  // are deterministic replays — the gate compares them machine-independently.
  const std::string path = std::string(TRIMCACHING_SOURCE_DIR) +
                           "/bench/baselines/BENCH_serving_baseline.json";
  const auto records = read_bench_json(path);
  for (const std::string load : {"4rps", "10rps", "25rps"}) {
    for (const std::string policy : {"static", "lru", "ewma", "priority"}) {
      const std::string name = "fig9_serving_" + load + "_" + policy;
      ASSERT_TRUE(records.count(name)) << "baseline is missing " << name;
      const JsonRecord& record = records.at(name);
      EXPECT_GT(record.wall_seconds, 0.0) << name;
      EXPECT_GE(record.hit_ratio, 0.0) << name;
      EXPECT_GE(record.p50_ms, 0.0) << name;
      EXPECT_LE(record.p50_ms, record.p95_ms) << name;
      EXPECT_LE(record.p95_ms, record.p99_ms) << name;
      EXPECT_GT(record.served_rps, 0.0) << name;
    }
  }
  // The story fig9 tells: under popularity drift the online policies beat
  // the drift-blind static placement at every load point.
  for (const std::string load : {"4rps", "10rps", "25rps"}) {
    const double fixed = records.at("fig9_serving_" + load + "_static").hit_ratio;
    EXPECT_GT(records.at("fig9_serving_" + load + "_lru").hit_ratio, fixed) << load;
    EXPECT_GT(records.at("fig9_serving_" + load + "_ewma").hit_ratio, fixed) << load;
  }
  // The outage-storm leg: both fault records carry the failure columns
  // (failover routing engaged, a worst degradation window was recorded) and
  // the reactive policy measured a re-warm transient. Fault-free records
  // never carry the failure columns — the schema stays byte-identical for
  // them.
  for (const std::string base : {"static", "lru"}) {
    const std::string name = "fig9_serving_faults_" + base;
    ASSERT_TRUE(records.count(name)) << "baseline is missing " << name;
    const JsonRecord& record = records.at(name);
    EXPECT_GE(record.hit_ratio, 0.0) << name;
    EXPECT_GT(record.failovers, 0.0) << name;
    EXPECT_GE(record.aborted, 0.0) << name;
    const std::string trough_name = name + "_worst_window";
    ASSERT_TRUE(records.count(trough_name)) << "baseline is missing " << trough_name;
    const JsonRecord& trough = records.at(trough_name);
    EXPECT_GE(trough.hit_ratio, 0.0) << trough_name;
    EXPECT_LE(trough.hit_ratio, record.hit_ratio) << trough_name;
  }
  EXPECT_GT(records.at("fig9_serving_faults_lru").rewarm_s, 0.0);
  EXPECT_LT(records.at("fig9_serving_10rps_lru").failovers, 0.0)
      << "a fault-free record must not carry the failure columns";
}

TEST(BenchJsonSchema, CommittedMicroBaselineMatchesTheLock) {
  // The micro baseline behind the SIMD kernel ratio gate: both synthesized
  // batched-over-simd ratio records must parse under the strict reader with
  // the ratio in speedup_vs_serial, and the gated 1000-link point must sit
  // at or above the 2x floor the gate enforces (a baseline below its own
  // floor would mask every future regression down to it).
  const std::string path = std::string(TRIMCACHING_SOURCE_DIR) +
                           "/bench/baselines/BENCH_micro_baseline.json";
  const auto records = read_bench_json(path);
  for (const std::string name :
       {"fading_simd_speedup_100", "fading_simd_speedup_1000"}) {
    ASSERT_TRUE(records.count(name)) << "baseline is missing " << name;
    const JsonRecord& record = records.at(name);
    EXPECT_GT(record.wall_seconds, 0.0) << name;
    EXPECT_GT(record.speedup_vs_serial, 1.0) << name;
  }
  EXPECT_GE(records.at("fading_simd_speedup_1000").speedup_vs_serial, 2.0);
}

}  // namespace
}  // namespace trimcaching::bench
