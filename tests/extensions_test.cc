// Tests for the extension modules: CountedCoverage, 1-swap local search,
// greedy scoring rules, the discrete-event serving engine, and the
// key=value option parser.
#include <gtest/gtest.h>

#include "src/core/independent_caching.h"
#include "src/core/local_search.h"
#include "src/core/trimcaching_gen.h"
#include "src/serve/engine.h"
#include "src/sim/scenario.h"
#include "src/support/options.h"
#include "tests/test_util.h"

namespace trimcaching {
namespace {

using core::CountedCoverage;
using support::Rng;

// ------------------------------------------------------------ CountedCoverage

class CountedCoverageTest : public ::testing::Test {
 protected:
  CountedCoverageTest() : world_(testutil::random_world(31, 3, 8, 10, 12, 40.0)) {}
  testutil::World world_;
};

TEST_F(CountedCoverageTest, AddRemoveRoundTrip) {
  const auto problem = world_.problem();
  CountedCoverage coverage(problem);
  EXPECT_DOUBLE_EQ(coverage.hit_mass(), 0.0);
  coverage.add(0, 1);
  coverage.add(1, 1);
  const double with_both = coverage.hit_mass();
  coverage.remove(1, 1);
  coverage.add(1, 1);
  EXPECT_NEAR(coverage.hit_mass(), with_both, 1e-12);
  coverage.remove(0, 1);
  coverage.remove(1, 1);
  EXPECT_NEAR(coverage.hit_mass(), 0.0, 1e-12);
}

TEST_F(CountedCoverageTest, RemoveWithoutAddThrows) {
  const auto problem = world_.problem();
  CountedCoverage coverage(problem);
  coverage.add(0, 1);
  // Removing a different placement whose hit list is non-empty must throw.
  for (ModelId i = 0; i < problem.num_models(); ++i) {
    if (i != 1 && !problem.hit_list(0, i).empty()) {
      EXPECT_THROW(coverage.remove(0, i), std::logic_error);
      break;
    }
  }
}

TEST_F(CountedCoverageTest, MarginalAndLossAreConsistent) {
  const auto problem = world_.problem();
  CountedCoverage coverage(problem);
  const double gain = coverage.marginal_mass(2, 3);
  coverage.add(2, 3);
  // With a single holder, removing it loses exactly what adding gained.
  EXPECT_NEAR(coverage.removal_loss(2, 3), gain, 1e-12);
  // A second holder of the same model makes the first removable for free
  // wherever both serve the same users.
  coverage.add(1, 3);
  EXPECT_LE(coverage.removal_loss(2, 3), gain + 1e-12);
}

TEST_F(CountedCoverageTest, MatchesCoverageStateMass) {
  const auto problem = world_.problem();
  CountedCoverage counted(problem);
  core::CoverageState simple(problem);
  Rng rng(5);
  for (int step = 0; step < 15; ++step) {
    const auto m = static_cast<ServerId>(rng.index(problem.num_servers()));
    const auto i = static_cast<ModelId>(rng.index(problem.num_models()));
    counted.add(m, i);
    simple.add(m, i);
    EXPECT_NEAR(counted.hit_mass(), simple.hit_mass(), 1e-12);
  }
}

// ----------------------------------------------------------------- LocalSearch

class LocalSearchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchTest, NeverDecreasesAndStaysFeasible) {
  const auto world = testutil::random_world(GetParam(), 3, 10, 12, 14, 35.0);
  const auto problem = world.problem();
  const auto gen = core::trimcaching_gen(problem);
  const auto improved = core::local_search(problem, gen.placement);
  EXPECT_GE(improved.hit_ratio, gen.hit_ratio - 1e-12);
  EXPECT_NEAR(improved.hit_ratio, core::expected_hit_ratio(problem, improved.placement),
              1e-12);
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().dedup_size(improved.placement.models_on(m)),
              problem.capacity(m));
  }
}

TEST_P(LocalSearchTest, RepairsIndependentPlacement) {
  // Independent caching ignores dedup; local search must exploit the slack.
  const auto world = testutil::random_world(GetParam() + 60, 3, 10, 12, 10, 30.0);
  const auto problem = world.problem();
  const auto indep = core::independent_caching(problem);
  const auto improved = core::local_search(problem, indep.placement);
  EXPECT_GE(improved.hit_ratio, indep.hit_ratio - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(LocalSearch, EmptyStartActsLikeGreedyFill) {
  const auto world = testutil::random_world(3, 2, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  core::PlacementSolution empty(problem.num_servers(), problem.num_models());
  const auto improved = core::local_search(problem, empty);
  // Pure additions only; must produce something useful.
  EXPECT_EQ(improved.swaps, 0u);
  EXPECT_GT(improved.additions, 0u);
  EXPECT_GT(improved.hit_ratio, 0.0);
}

TEST(LocalSearch, RespectsRoundCap) {
  const auto world = testutil::random_world(4, 2, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  core::PlacementSolution empty(problem.num_servers(), problem.num_models());
  core::LocalSearchConfig config;
  config.max_rounds = 1;
  const auto improved = core::local_search(problem, empty, config);
  EXPECT_LE(improved.rounds, 1u);
}

TEST(LocalSearch, DimensionMismatchThrows) {
  const auto world = testutil::random_world(5, 2, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  core::PlacementSolution wrong(problem.num_servers() + 1, problem.num_models());
  EXPECT_THROW((void)core::local_search(problem, wrong), std::invalid_argument);
}

// ----------------------------------------------------------------- GreedyRule

class GreedyRuleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyRuleTest, PerByteRuleFeasibleAndComparable) {
  const auto world = testutil::random_world(GetParam(), 3, 10, 12, 14, 30.0);
  const auto problem = world.problem();
  const auto gain = core::trimcaching_gen(problem);
  const auto per_byte = core::trimcaching_gen(
      problem, core::GenConfig{.lazy = true, .rule = core::GreedyRule::kGainPerByte});
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().dedup_size(per_byte.placement.models_on(m)),
              problem.capacity(m));
  }
  // Neither rule dominates in theory; both must produce sane ratios.
  EXPECT_GT(gain.hit_ratio + per_byte.hit_ratio, 0.0);
  EXPECT_LE(per_byte.hit_ratio, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyRuleTest, ::testing::Range<std::uint64_t>(0, 6));

// -------------------------------------------------------------- ServingEngine

class ServingEngineTest : public ::testing::Test {
 protected:
  ServingEngineTest() {
    sim::ScenarioConfig config;
    config.num_servers = 5;
    config.num_users = 10;
    config.library_size = 15;
    config.special.models_per_family = 10;
    config.capacity_bytes = support::megabytes(500);
    Rng rng(77);
    scenario_ = std::make_unique<sim::Scenario>(sim::build_scenario(config, rng));
    problem_ = std::make_unique<core::PlacementProblem>(scenario_->problem());
    placement_ = std::make_unique<core::PlacementSolution>(
        core::trimcaching_gen(*problem_).placement);
  }

  std::unique_ptr<sim::Scenario> scenario_;
  std::unique_ptr<core::PlacementProblem> problem_;
  std::unique_ptr<core::PlacementSolution> placement_;
};

TEST_F(ServingEngineTest, RequestConservation) {
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.1;
  config.duration_s = 400.0;
  const auto result =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, config, Rng(1));
  const auto& totals = result.totals;
  EXPECT_GT(totals.requests, 0u);
  EXPECT_EQ(totals.requests, totals.deadline_hits + totals.late + totals.unserved);
  EXPECT_EQ(totals.completed(), totals.latency.count());
  EXPECT_GE(result.mean_download_s, 0.0);
  EXPECT_GE(result.p95_download_s, result.mean_download_s * 0.5);
}

TEST_F(ServingEngineTest, LowLoadMatchesSnapshotModel) {
  // With nearly no contention, the empirical hit ratio approaches the
  // snapshot expectation (Eq. 2 evaluated at average rates).
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.002;  // one request per user per ~8 min
  config.duration_s = 40000.0;
  const auto result =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, config, Rng(2));
  const double expected = core::expected_hit_ratio(*problem_, *placement_);
  EXPECT_NEAR(result.hit_ratio, expected, 0.08);
  EXPECT_LT(result.mean_concurrency, 1.2);
}

TEST_F(ServingEngineTest, HeavyLoadDegrades) {
  serve::ServeConfig light;
  light.arrival_rate_per_user = 0.01;
  light.duration_s = 3000.0;
  serve::ServeConfig heavy = light;
  heavy.arrival_rate_per_user = 3.0;
  heavy.duration_s = 60.0;
  const auto light_result =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, light, Rng(3));
  const auto heavy_result =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, heavy, Rng(3));
  EXPECT_LT(heavy_result.hit_ratio, light_result.hit_ratio);
  EXPECT_GT(heavy_result.mean_concurrency, light_result.mean_concurrency);
}

TEST_F(ServingEngineTest, EmptyPlacementAllUnserved) {
  core::PlacementSolution empty(scenario_->topology.num_servers(),
                                scenario_->library.num_models());
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.1;
  config.duration_s = 200.0;
  const auto result = serve::simulate_serving(
      scenario_->topology, scenario_->library, scenario_->requests, empty, config,
      Rng(4));
  EXPECT_EQ(result.totals.unserved, result.totals.requests);
  EXPECT_EQ(result.totals.deadline_hits, 0u);
}

TEST_F(ServingEngineTest, Deterministic) {
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.05;
  config.duration_s = 500.0;
  const auto r1 =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, config, Rng(9));
  const auto r2 =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, config, Rng(9));
  EXPECT_EQ(r1.totals.requests, r2.totals.requests);
  EXPECT_EQ(r1.totals.deadline_hits, r2.totals.deadline_hits);
  EXPECT_DOUBLE_EQ(r1.mean_download_s, r2.mean_download_s);
}

TEST_F(ServingEngineTest, InvalidConfigRejected) {
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.0;
  EXPECT_THROW(
      (void)serve::simulate_serving(scenario_->topology, scenario_->library,
                                    scenario_->requests, *placement_, config, Rng(5)),
      std::invalid_argument);
}

// --------------------------------------------------------------------- Options

TEST(Options, ParsesTypedValues) {
  const char* argv[] = {"prog", "servers=12", "capacity_gb=1.5", "lazy=true",
                        "name=spec"};
  const auto options = support::Options::parse(5, argv);
  EXPECT_EQ(options.get_size("servers", 0), 12u);
  EXPECT_DOUBLE_EQ(options.get_double("capacity_gb", 0.0), 1.5);
  EXPECT_TRUE(options.get_bool("lazy", false));
  EXPECT_EQ(options.get_string("name", ""), "spec");
  EXPECT_TRUE(options.has("servers"));
  EXPECT_FALSE(options.has("absent"));
}

TEST(Options, FallbacksApply) {
  const char* argv[] = {"prog"};
  const auto options = support::Options::parse(1, argv);
  EXPECT_EQ(options.get_size("servers", 7), 7u);
  EXPECT_DOUBLE_EQ(options.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(options.get_bool("b", false));
}

TEST(Options, MalformedTokensRejected) {
  const char* bad1[] = {"prog", "noequals"};
  EXPECT_THROW((void)support::Options::parse(2, bad1), std::invalid_argument);
  const char* bad2[] = {"prog", "=value"};
  EXPECT_THROW((void)support::Options::parse(2, bad2), std::invalid_argument);
  const char* bad3[] = {"prog", "k=1", "k=2"};
  EXPECT_THROW((void)support::Options::parse(3, bad3), std::invalid_argument);
}

TEST(Options, TypeErrorsRejected) {
  const char* argv[] = {"prog", "n=abc", "b=maybe", "s=-3"};
  const auto options = support::Options::parse(4, argv);
  EXPECT_THROW((void)options.get_double("n", 0.0), std::invalid_argument);
  EXPECT_THROW((void)options.get_bool("b", false), std::invalid_argument);
  EXPECT_THROW((void)options.get_size("s", 0), std::invalid_argument);
}

TEST(Options, UnknownKeyDetection) {
  const char* argv[] = {"prog", "servers=3", "typo_key=1"};
  const auto options = support::Options::parse(3, argv);
  EXPECT_THROW(options.check_unknown({"servers"}), std::invalid_argument);
  EXPECT_NO_THROW(options.check_unknown({"servers", "typo_key"}));
}

}  // namespace
}  // namespace trimcaching
