// Shared fixtures for the core-algorithm tests: deterministic small worlds
// and random instance generators (random libraries deliberately produce
// non-chain sharing structures to exercise the DP solver's generic path).
#pragma once

#include <string>
#include <vector>

#include "src/core/problem.h"
#include "src/model/model_library.h"
#include "src/support/rng.h"
#include "src/support/units.h"
#include "src/wireless/topology.h"
#include "src/workload/request_model.h"

namespace trimcaching::testutil {

/// Owns everything a PlacementProblem borrows.
struct World {
  wireless::NetworkTopology topology;
  model::ModelLibrary library;
  workload::RequestModel requests;

  [[nodiscard]] core::PlacementProblem problem() const {
    return core::PlacementProblem(topology, library, requests);
  }
};

/// A random library with arbitrary (usually non-chain) sharing: `num_blocks`
/// blocks with whole-MB sizes in [1, max_block_mb]; every model draws 1..4
/// distinct blocks. Whole-MB sizes make the weight-quantized DP exact when
/// the capacity is a whole number of MB and weight_states == capacity in MB.
inline model::ModelLibrary random_library(support::Rng& rng, std::size_t num_models,
                                          std::size_t num_blocks,
                                          std::size_t max_block_mb = 8) {
  model::ModelLibrary lib;
  for (std::size_t j = 0; j < num_blocks; ++j) {
    lib.add_block(support::megabytes(static_cast<double>(
                      rng.uniform_int(1, static_cast<std::int64_t>(max_block_mb)))),
                  "b" + std::to_string(j));
  }
  for (std::size_t i = 0; i < num_models; ++i) {
    const std::size_t count =
        1 + rng.index(std::min<std::size_t>(4, num_blocks));
    std::vector<std::size_t> order = rng.permutation(num_blocks);
    std::vector<BlockId> blocks;
    for (std::size_t c = 0; c < count; ++c) {
      blocks.push_back(static_cast<BlockId>(order[c]));
    }
    lib.add_model("m" + std::to_string(i), "rand", std::move(blocks));
  }
  lib.finalize();
  return lib;
}

/// A random world: uniform topology, random library, Zipf requests. Capacity
/// is whole-MB. Intended scale: M <= 4, K <= 12, I <= 14 (exact solver OK).
inline World random_world(std::uint64_t seed, std::size_t num_servers,
                          std::size_t num_users, std::size_t num_models,
                          std::size_t num_blocks, double capacity_mb,
                          double area_side_m = 600.0) {
  support::Rng rng(seed);
  wireless::RadioConfig radio;
  auto topology = wireless::sample_topology(
      wireless::Area{area_side_m}, radio, num_servers, num_users,
      support::megabytes(capacity_mb), rng);
  auto library = random_library(rng, num_models, num_blocks);
  workload::RequestConfig req_config;
  auto requests =
      workload::RequestModel::generate(num_users, num_models, req_config, rng);
  return World{std::move(topology), std::move(library), std::move(requests)};
}

/// Brute-force optimum of the per-server sub-problem P2.1_m: max Σ u(i) over
/// model subsets with dedup size <= capacity. Exponential; keep |I| small.
inline double brute_force_subproblem(const model::ModelLibrary& library,
                                     const std::vector<double>& utilities,
                                     support::Bytes capacity) {
  const std::size_t n = library.num_models();
  double best = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<ModelId> models;
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        models.push_back(static_cast<ModelId>(i));
        value += utilities[i];
      }
    }
    if (value <= best) continue;
    if (library.dedup_size(models) <= capacity) best = value;
  }
  return best;
}

}  // namespace trimcaching::testutil
