// Tests for the online serving subsystem: virtual-time processor sharing
// (stale-event discipline), request merging, the drifting-Zipf workload,
// thread-count bit-identity, the cache-policy factory, and the streaming
// metrics (latency histogram, queue-depth series).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "src/core/trimcaching_gen.h"
#include "src/serve/cache_policy.h"
#include "src/serve/engine.h"
#include "src/serve/metrics.h"
#include "src/sim/scenario.h"
#include "src/workload/drifting_zipf.h"
#include "tests/test_util.h"

namespace trimcaching {
namespace {

using support::Rng;

class ServeSystemTest : public ::testing::Test {
 protected:
  ServeSystemTest() {
    sim::ScenarioConfig config;
    config.num_servers = 5;
    config.num_users = 30;
    config.library_size = 24;
    config.special.models_per_family = 8;
    config.capacity_bytes = support::megabytes(500);
    Rng rng(42);
    scenario_ = std::make_unique<sim::Scenario>(sim::build_scenario(config, rng));
    problem_ = std::make_unique<core::PlacementProblem>(scenario_->problem());
    placement_ = std::make_unique<core::PlacementSolution>(
        core::trimcaching_gen(*problem_).placement);
    empty_ = std::make_unique<core::PlacementSolution>(problem_->num_servers(),
                                                       problem_->num_models());
  }

  [[nodiscard]] serve::ServeResult run(const core::PlacementSolution& placement,
                                       const serve::ServeConfig& config,
                                       std::uint64_t seed) const {
    return serve::simulate_serving(scenario_->topology, scenario_->library,
                                   scenario_->requests, placement, config,
                                   Rng(seed));
  }

  std::unique_ptr<sim::Scenario> scenario_;
  std::unique_ptr<core::PlacementProblem> problem_;
  std::unique_ptr<core::PlacementSolution> placement_;
  std::unique_ptr<core::PlacementSolution> empty_;
};

// ------------------------------------------------------- stale-event discipline

TEST_F(ServeSystemTest, StaleFinishEventsAreDiscardedAndCounted) {
  // Every flow that attaches while a finish event is outstanding bumps the
  // schedule version and strands the old event; under sustained contention
  // that must happen many times, and never corrupt the books.
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.5;
  config.duration_s = 400.0;
  const auto result = run(*placement_, config, 11);
  const auto& t = result.totals;
  EXPECT_GT(t.stale_events, 100u);
  EXPECT_EQ(t.requests, t.deadline_hits + t.late + t.unserved);
  EXPECT_EQ(t.terminal(), t.requests);
  EXPECT_EQ(t.completed(), t.latency.count());
}

// ------------------------------------------------------- compute admission

TEST_F(ServeSystemTest, ComputeAdmissionRejectsToCloudAndPartitions) {
  // One inference slot per server under sustained load: arrivals that find
  // the slot busy degrade to the cloud (a terminal state, 1:1 with the
  // rejection counter) and the four terminal states still partition the
  // request count exactly.
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.5;
  config.duration_s = 400.0;
  config.compute_slots = 1;
  const auto constrained = run(*placement_, config, 11);
  const auto& t = constrained.totals;
  EXPECT_GT(t.compute_rejects, 0u);
  EXPECT_EQ(t.compute_rejects, t.cloud_served);
  EXPECT_EQ(t.terminal(), t.requests);
  EXPECT_EQ(t.completed(), t.latency.count());

  // A slot count the workload can never saturate admits everything and
  // reproduces the unlimited replay's per-flow outcomes exactly.
  config.compute_slots = std::size_t{1} << 20;
  const auto roomy = run(*placement_, config, 11);
  config.compute_slots = 0;
  const auto unlimited = run(*placement_, config, 11);
  EXPECT_EQ(roomy.totals.compute_rejects, 0u);
  EXPECT_EQ(roomy.totals.cloud_served, 0u);
  EXPECT_EQ(unlimited.totals.compute_rejects, 0u);
  EXPECT_EQ(roomy.totals.deadline_hits, unlimited.totals.deadline_hits);
  EXPECT_EQ(roomy.totals.late, unlimited.totals.late);
  EXPECT_EQ(roomy.totals.unserved, unlimited.totals.unserved);
  EXPECT_EQ(roomy.totals.download_sum_s, unlimited.totals.download_sum_s);
  EXPECT_EQ(unlimited.totals.terminal(), unlimited.totals.requests);
  // Saturation can only lower the served mass, never raise it.
  EXPECT_LE(t.deadline_hits, unlimited.totals.deadline_hits);
}

TEST(ServeAdmission, BudgetSpentAtArrivalCountsUnserved) {
  // Deadlines strictly shorter than any inference time: every request's
  // download budget is already negative when it arrives, so nothing may be
  // enqueued (a doomed flow would finish late *and* steal processor-sharing
  // bandwidth from viable ones) — the whole replay lands in `unserved`.
  sim::ScenarioConfig config;
  config.num_servers = 3;
  config.num_users = 12;
  config.library_size = 10;
  config.special.models_per_family = 4;
  config.requests.deadline_min_s = 0.10;
  config.requests.deadline_max_s = 0.15;
  config.requests.inference_min_s = 0.20;
  config.requests.inference_max_s = 0.30;
  Rng rng(19);
  const auto scenario = sim::build_scenario(config, rng);
  core::PlacementSolution placement(config.num_servers,
                                    scenario.library.num_models());
  for (ServerId m = 0; m < config.num_servers; ++m) {
    for (ModelId i = 0; i < scenario.library.num_models(); ++i) {
      placement.place(m, i);
    }
  }

  serve::ServeConfig serving;
  serving.arrival_rate_per_user = 0.5;
  serving.duration_s = 100.0;
  const auto result = serve::simulate_serving(scenario.topology, scenario.library,
                                              scenario.requests, placement, serving,
                                              Rng(23));
  const auto& t = result.totals;
  EXPECT_GT(t.requests, 0u);
  EXPECT_EQ(t.unserved, t.requests);
  EXPECT_EQ(t.deadline_hits, 0u);
  EXPECT_EQ(t.late, 0u);
  EXPECT_EQ(t.completed(), 0u);
  EXPECT_EQ(t.latency.count(), 0u);
  EXPECT_EQ(t.terminal(), t.requests);
}

// ------------------------------------------------------------- request merging

TEST(ServeMerging, ConcurrentMissesShareOneFetch) {
  // Cold caches with room for the whole library (no evictions, so nothing
  // is ever re-fetched): each server pulls a block from the cloud at most
  // once, so distinct fetches are bounded by models x servers while the
  // misses that arrived mid-flight merge onto them. Without merging, every
  // early request would open its own transfer.
  sim::ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 20;
  config.library_size = 16;
  config.special.models_per_family = 6;
  config.capacity_bytes = support::gigabytes(4.0);
  Rng rng(21);
  const auto scenario = sim::build_scenario(config, rng);
  const core::PlacementSolution empty(config.num_servers,
                                      scenario.library.num_models());

  serve::ServeConfig serving;
  serving.policy = "lru";
  serving.arrival_rate_per_user = 1.0;
  serving.duration_s = 300.0;
  const auto result = serve::simulate_serving(scenario.topology, scenario.library,
                                              scenario.requests, empty, serving,
                                              Rng(3));
  const auto& t = result.totals;
  const std::size_t num_models = scenario.library.num_models();
  EXPECT_GT(t.cloud_fetches, 0u);
  EXPECT_LE(t.cloud_fetches, num_models * config.num_servers);
  EXPECT_GT(t.merged_fetches, 0u);
  // Bytes are counted per transfer, not per rider: the total is bounded by
  // one dedup copy of the library per server.
  std::vector<ModelId> all(num_models);
  std::iota(all.begin(), all.end(), ModelId{0});
  EXPECT_LE(t.cloud_bytes, scenario.library.dedup_size(all) * config.num_servers);
  EXPECT_EQ(t.requests, t.deadline_hits + t.late + t.unserved);
  EXPECT_EQ(t.terminal(), t.requests);
}

// -------------------------------------------------------- full-coverage parity

TEST_F(ServeSystemTest, FullCoverageServesEverythingAtTheEdge) {
  // When every server caches the whole library, routing and cache state
  // cannot differ between policies: everything is an edge hit, nothing
  // touches the backhaul or the cloud, and static and LRU agree exactly.
  sim::ScenarioConfig config;
  config.num_servers = 3;
  config.num_users = 12;
  config.library_size = 10;
  config.special.models_per_family = 4;
  config.capacity_bytes = support::gigabytes(4.0);
  Rng rng(7);
  const auto scenario = sim::build_scenario(config, rng);
  core::PlacementSolution placement(config.num_servers,
                                    scenario.library.num_models());
  for (ServerId m = 0; m < config.num_servers; ++m) {
    for (ModelId i = 0; i < scenario.library.num_models(); ++i) {
      placement.place(m, i);
    }
  }
  std::vector<ModelId> all(scenario.library.num_models());
  std::iota(all.begin(), all.end(), ModelId{0});
  ASSERT_LE(scenario.library.dedup_size(all), config.capacity_bytes);

  serve::ServeConfig serving;
  serving.arrival_rate_per_user = 0.1;
  serving.duration_s = 500.0;
  const auto fixed = serve::simulate_serving(scenario.topology, scenario.library,
                                             scenario.requests, placement, serving,
                                             Rng(5));
  serving.policy = "lru";
  const auto reactive = serve::simulate_serving(scenario.topology, scenario.library,
                                                scenario.requests, placement,
                                                serving, Rng(5));
  for (const auto* r : {&fixed, &reactive}) {
    EXPECT_EQ(r->totals.cloud_fetches, 0u);
    EXPECT_EQ(r->totals.relays, 0u);
    EXPECT_EQ(r->totals.edge_hits, r->totals.requests - r->totals.unserved);
  }
  EXPECT_EQ(fixed.totals.deadline_hits, reactive.totals.deadline_hits);
  EXPECT_EQ(fixed.totals.download_sum_s, reactive.totals.download_sum_s);
}

// -------------------------------------------------------- drifting-Zipf sanity

TEST(DriftingZipf, EmpiricalCountsMatchAnalyticPmf) {
  const std::size_t num_models = 20;
  std::vector<ModelId> order(num_models);
  std::iota(order.begin(), order.end(), ModelId{0});
  workload::DriftingZipfConfig config;
  config.exponent_start = 0.7;
  config.exponent_end = 1.3;
  config.epoch_s = 100.0;
  config.swaps_per_epoch = 4;
  const workload::DriftingZipf drift(order, 1000.0, config, Rng(91));

  // Chi-squared against the closed-form pmf inside two different epochs.
  for (const double t : {50.0, 850.0}) {
    double pmf_sum = 0.0;
    for (ModelId i = 0; i < num_models; ++i) pmf_sum += drift.pmf(t, i);
    EXPECT_NEAR(pmf_sum, 1.0, 1e-12);

    const std::size_t draws = 100000;
    std::vector<std::size_t> counts(num_models, 0);
    Rng rng(static_cast<std::uint64_t>(t) + 1);
    for (std::size_t n = 0; n < draws; ++n) ++counts[drift.sample(t, rng)];
    double chi2 = 0.0;
    for (ModelId i = 0; i < num_models; ++i) {
      const double expected = static_cast<double>(draws) * drift.pmf(t, i);
      ASSERT_GT(expected, 0.0);
      const double diff = static_cast<double>(counts[i]) - expected;
      chi2 += diff * diff / expected;
    }
    // 19 degrees of freedom: mean 19, p(chi2 > 60) ~ 4e-6. Deterministic
    // seed, so this is a regression bound, not a flaky gate.
    EXPECT_LT(chi2, 60.0) << "at t=" << t;
  }
}

TEST(DriftingZipf, OrdersStayPermutationsAndExponentRamps) {
  const std::size_t num_models = 16;
  std::vector<ModelId> order(num_models);
  std::iota(order.begin(), order.end(), ModelId{0});
  workload::DriftingZipfConfig config;
  config.exponent_start = 0.5;
  config.exponent_end = 1.5;
  config.epoch_s = 10.0;
  config.swaps_per_epoch = 3;
  const workload::DriftingZipf drift(order, 100.0, config, Rng(13));
  ASSERT_EQ(drift.num_epochs(), 10u);
  for (std::size_t e = 0; e < drift.num_epochs(); ++e) {
    std::vector<char> seen(num_models, 0);
    for (const ModelId i : drift.order_at(e)) {
      ASSERT_LT(i, num_models);
      ASSERT_FALSE(seen[i]);
      seen[i] = 1;
    }
    if (e > 0) EXPECT_GT(drift.exponent_at(e), drift.exponent_at(e - 1));
  }
}

// -------------------------------------------------------- thread bit-identity

TEST_F(ServeSystemTest, MetricsBitIdenticalAcrossThreadCounts) {
  const workload::DriftingZipf drift(
      workload::DriftingZipf::popularity_order(scenario_->requests), 300.0,
      workload::DriftingZipfConfig{0.8, 1.1, 50.0, 5}, Rng(77));
  serve::ServeConfig config;
  config.policy = "ewma:tau_s=90";
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 300.0;
  config.average_channel = false;  // per-request fading also in the streams
  config.queue_depth_samples = 64;
  config.drift = &drift;
  config.compute_slots = 2;  // admission decisions also in the replay

  config.threads = 1;
  const auto serial = run(*placement_, config, 29);
  config.threads = 8;
  const auto threaded = run(*placement_, config, 29);

  const auto& a = serial.totals;
  const auto& b = threaded.totals;
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.unserved, b.unserved);
  EXPECT_EQ(a.edge_hits, b.edge_hits);
  EXPECT_EQ(a.relays, b.relays);
  EXPECT_EQ(a.cloud_fetches, b.cloud_fetches);
  EXPECT_EQ(a.merged_fetches, b.merged_fetches);
  EXPECT_EQ(a.cloud_bytes, b.cloud_bytes);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
  EXPECT_EQ(a.compute_rejects, b.compute_rejects);
  EXPECT_EQ(a.cloud_served, b.cloud_served);
  EXPECT_EQ(a.stale_events, b.stale_events);
  EXPECT_EQ(a.download_sum_s, b.download_sum_s);  // bit-identical, not NEAR
  EXPECT_EQ(a.busy_time_s, b.busy_time_s);
  EXPECT_EQ(a.flow_time_s, b.flow_time_s);
  EXPECT_EQ(a.queue_depth, b.queue_depth);
  EXPECT_EQ(serial.hit_ratio, threaded.hit_ratio);
  EXPECT_EQ(serial.p99_download_s, threaded.p99_download_s);
}

// ----------------------------------------------------------- policy factory

TEST(CachePolicyFactory, KnownPoliciesConstructAndReportNames) {
  for (const std::string& name : serve::known_cache_policies()) {
    const auto policy = serve::make_cache_policy(name);
    EXPECT_EQ(policy->name(), name);
    EXPECT_EQ(policy->reactive(), name != "static");
  }
}

TEST(CachePolicyFactory, RejectsUnknownSpecs) {
  EXPECT_THROW((void)serve::make_cache_policy("arc"), std::invalid_argument);
  EXPECT_THROW((void)serve::make_cache_policy(""), std::invalid_argument);
  EXPECT_THROW((void)serve::make_cache_policy("ewma:tau=5"), std::invalid_argument);
  EXPECT_THROW((void)serve::make_cache_policy("ewma:tau_s=0"), std::invalid_argument);
  EXPECT_THROW((void)serve::make_cache_policy("lru:tau_s=5"), std::invalid_argument);
  EXPECT_NO_THROW((void)serve::make_cache_policy("ewma:tau_s=5"));
}

// ------------------------------------------------------------- metrics units

TEST(LatencyHistogram, QuantilesLandInTheRightBin) {
  serve::LatencyHistogram h;
  for (int n = 0; n < 90; ++n) h.add(0.1);
  for (int n = 0; n < 9; ++n) h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 100u);
  // Log-spaced bins are ~7.5% wide; allow 10% either side of the midpoint.
  EXPECT_NEAR(h.quantile(0.50), 0.1, 0.01);
  EXPECT_NEAR(h.quantile(0.95), 10.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 100.0, 10.0);
}

TEST(LatencyHistogram, UnderAndOverflowClampToTheRange) {
  serve::LatencyHistogram h;
  h.add(1e-9);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), serve::LatencyHistogram::kMinSeconds);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), serve::LatencyHistogram::kMaxSeconds);

  serve::LatencyHistogram other;
  other.add(1.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 0.1);
}

TEST_F(ServeSystemTest, QueueDepthSeriesHasTheRequestedShape) {
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 200.0;
  config.queue_depth_samples = 50;
  const auto result = run(*placement_, config, 17);
  ASSERT_EQ(result.totals.queue_depth.size(), 50u);
  // Sample 0 is taken at t = 0, before any Poisson arrival can attach.
  EXPECT_EQ(result.totals.queue_depth.front(), 0u);
  std::uint32_t peak = 0;
  for (const std::uint32_t depth : result.totals.queue_depth) {
    peak = std::max(peak, depth);
  }
  EXPECT_GT(peak, 0u);
}

}  // namespace
}  // namespace trimcaching
