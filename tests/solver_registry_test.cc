// Tests of the unified Solver API: registry round-trips (every registered
// name resolves, solves, and returns a capacity-feasible placement),
// adapter-vs-legacy equivalence on fixed seeds, spec-string parsing, and
// composition semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/baselines.h"
#include "src/core/exact_solver.h"
#include "src/core/independent_caching.h"
#include "src/core/local_search.h"
#include "src/core/objective.h"
#include "src/core/solver_registry.h"
#include "src/core/trimcaching_gen.h"
#include "src/core/trimcaching_spec.h"
#include "tests/test_util.h"

namespace trimcaching::core {
namespace {

void expect_storage_feasible(const PlacementProblem& problem,
                             const PlacementSolution& placement) {
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().dedup_size(placement.models_on(m)),
              problem.capacity(m))
        << "server " << m;
  }
}

TEST(SolverRegistry, ListsAllBuiltinSolvers) {
  const auto infos = SolverRegistry::instance().list();
  std::vector<std::string> names;
  for (const auto& info : infos) {
    names.push_back(info.name);
    EXPECT_FALSE(info.summary.empty()) << info.name;
  }
  for (const char* expected : {"spec", "gen", "gen_naive", "independent", "exact",
                               "top_pop", "random", "ls", "repair"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver '" << expected << "'";
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// Every registered name must resolve, solve a small scenario, and return a
// capacity-feasible placement whose reported ratio matches Eq. 2.
TEST(SolverRegistry, EveryRegisteredSolverRoundTrips) {
  const auto world = testutil::random_world(5, 2, 8, 10, 12, 30.0);
  const auto problem = world.problem();
  for (const auto& info : SolverRegistry::instance().list()) {
    const auto solver = SolverRegistry::instance().make(info.name);
    ASSERT_NE(solver, nullptr) << info.name;
    EXPECT_EQ(solver->name(), info.name);
    EXPECT_FALSE(solver->title().empty()) << info.name;
    SolverContext context(99);
    const SolverOutcome outcome = solver->run(problem, context);
    expect_storage_feasible(problem, outcome.placement);
    EXPECT_NEAR(outcome.hit_ratio, expected_hit_ratio(problem, outcome.placement),
                1e-12)
        << info.name;
    EXPECT_GE(outcome.hit_ratio, 0.0) << info.name;
    EXPECT_LE(outcome.hit_ratio, 1.0 + 1e-12) << info.name;
    EXPECT_GE(outcome.wall_seconds, 0.0) << info.name;
  }
}

// ------------------------------------------------- adapter-vs-legacy parity

class AdapterEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] static double via_registry(const PlacementProblem& problem,
                                           const std::string& spec,
                                           std::uint64_t seed = 7) {
    SolverContext context(seed);
    return SolverRegistry::instance().make(spec)->run(problem, context).hit_ratio;
  }
};

TEST_P(AdapterEquivalence, MatchesLegacyFreeFunctions) {
  const auto world = testutil::random_world(GetParam(), 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();

  EXPECT_DOUBLE_EQ(via_registry(problem, "spec"),
                   trimcaching_spec(problem).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "gen"), trimcaching_gen(problem).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "gen:lazy=0"),
                   trimcaching_gen(problem, GenConfig{.lazy = false}).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "gen_naive"),
                   trimcaching_gen(problem, GenConfig{.lazy = false}).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "independent"),
                   independent_caching(problem).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "exact"), exact_optimal(problem).hit_ratio);
  EXPECT_DOUBLE_EQ(via_registry(problem, "top_pop"),
                   top_popularity_caching(problem).hit_ratio);
  {
    // Same seed on both sides: the adapter draws from the context RNG.
    support::Rng legacy_rng(7);
    EXPECT_DOUBLE_EQ(via_registry(problem, "random", 7),
                     random_placement(problem, legacy_rng).hit_ratio);
  }
  {
    const auto gen = trimcaching_gen(problem);
    EXPECT_DOUBLE_EQ(via_registry(problem, "gen+ls"),
                     local_search(problem, gen.placement).hit_ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdapterEquivalence,
                         ::testing::Range<std::uint64_t>(0, 6));

// ---------------------------------------------------------- counters / bound

TEST(SolverRegistry, OutcomeCarriesWorkCounters) {
  const auto world = testutil::random_world(3, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  SolverContext context(1);

  const auto gen = SolverRegistry::instance().make("gen")->run(problem, context);
  EXPECT_GT(gen.gain_evaluations, 0u);

  const auto spec = SolverRegistry::instance().make("spec")->run(problem, context);
  EXPECT_GT(spec.iterations, 0u);  // combinations visited

  const auto exact = SolverRegistry::instance().make("exact")->run(problem, context);
  EXPECT_GT(exact.iterations, 0u);  // B&B nodes
  ASSERT_TRUE(exact.optimality_bound.has_value());
  EXPECT_DOUBLE_EQ(*exact.optimality_bound, exact.hit_ratio);
  // The exact optimum dominates every heuristic.
  EXPECT_GE(exact.hit_ratio + 1e-9, gen.hit_ratio);
  EXPECT_GE(exact.hit_ratio + 1e-9, spec.hit_ratio);
}

// --------------------------------------------------------------- spec parsing

TEST(SolverRegistry, UnknownNameListsAvailableSolvers) {
  try {
    (void)SolverRegistry::instance().make("nonsense");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nonsense"), std::string::npos);
    // The error is self-diagnosing: it lists every registered name.
    EXPECT_NE(message.find("spec"), std::string::npos);
    EXPECT_NE(message.find("gen"), std::string::npos);
    EXPECT_NE(message.find("independent"), std::string::npos);
  }
}

TEST(SolverRegistry, RejectsMalformedSpecs) {
  auto& registry = SolverRegistry::instance();
  EXPECT_THROW((void)registry.make(""), std::invalid_argument);
  EXPECT_THROW((void)registry.make("gen+"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("+ls"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("gen:bogus_key=1"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("gen:lazy=maybe"), std::invalid_argument);
  EXPECT_THROW((void)registry.make("spec:mode=psychic"), std::invalid_argument);
  // Only refiners may appear right of '+'.
  EXPECT_THROW((void)registry.make("gen+spec"), std::invalid_argument);
}

TEST(SolverRegistry, OptionsChangeBehavior) {
  const auto world = testutil::random_world(11, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  SolverContext context(1);
  const auto lazy =
      SolverRegistry::instance().make("gen")->run(problem, context);
  const auto naive =
      SolverRegistry::instance().make("gen:lazy=0")->run(problem, context);
  // Same greedy value sequence, but the lazy driver evaluates fewer gains.
  EXPECT_NEAR(lazy.hit_ratio, naive.hit_ratio, 1e-9);
  EXPECT_LE(lazy.gain_evaluations, naive.gain_evaluations);

  const auto weight_dp = SolverRegistry::instance()
                             .make("spec:mode=weight,states=40")
                             ->run(problem, context);
  expect_storage_feasible(problem, weight_dp.placement);
}

// --------------------------------------------------------------- composition

TEST(SolverRegistry, CompositionRefinesAndAccumulatesCounters) {
  const auto world = testutil::random_world(21, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  SolverContext context(1);
  const auto base = SolverRegistry::instance().make("independent")->run(problem,
                                                                        context);
  const auto composed =
      SolverRegistry::instance().make("independent+ls")->run(problem, context);
  EXPECT_GE(composed.hit_ratio, base.hit_ratio - 1e-12);
  expect_storage_feasible(problem, composed.placement);

  const auto solver = SolverRegistry::instance().make("gen+ls");
  EXPECT_EQ(solver->name(), "gen+ls");
  EXPECT_EQ(solver->title(), "TrimCaching Gen + 1-swap Local Search");
}

TEST(SolverRegistry, ExpiredDeadlineSkipsRefinement) {
  const auto world = testutil::random_world(8, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();

  SolverContext plain(1);
  const auto gen = SolverRegistry::instance().make("gen")->run(problem, plain);

  SolverContext expired(1);
  expired.set_deadline_after(0.0);  // already past
  std::vector<std::string> events;
  expired.trace = [&](std::string_view event) { events.emplace_back(event); };
  const auto composed =
      SolverRegistry::instance().make("gen+ls")->run(problem, expired);
  // The base result passes through untouched and the skip is announced.
  EXPECT_DOUBLE_EQ(composed.hit_ratio, gen.hit_ratio);
  EXPECT_EQ(composed.gain_evaluations, gen.gain_evaluations);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("deadline"), std::string::npos);
}

TEST(SolverRegistry, StandaloneLocalSearchBuildsFromEmpty) {
  const auto world = testutil::random_world(17, 2, 8, 10, 12, 30.0);
  const auto problem = world.problem();
  SolverContext context(1);
  const auto outcome = SolverRegistry::instance().make("ls")->run(problem, context);
  expect_storage_feasible(problem, outcome.placement);
  // Pure-add moves alone must reach a maximal placement: positive ratio on
  // any world where something is reachable.
  if (problem.reachable_mass() > 0) {
    EXPECT_GT(outcome.hit_ratio, 0.0);
  }
}

// ----------------------------------------------------------------- extension

TEST(SolverRegistry, UserRegisteredSolverIsCreatable) {
  // The whole point of the registry: adding a policy is one registration.
  class ConstantSolver final : public Solver {
   public:
    std::string name() const override { return "noop_for_test"; }
    std::string title() const override { return "No-op"; }
    SolverOutcome solve(const PlacementProblem& problem,
                        SolverContext&) const override {
      return SolverOutcome(
          PlacementSolution(problem.num_servers(), problem.num_models()));
    }
  };
  auto& registry = SolverRegistry::instance();
  if (!registry.contains("noop_for_test")) {
    registry.add("noop_for_test", "does nothing (test double)",
                 [](const support::Options& options) -> std::unique_ptr<Solver> {
                   options.check_unknown({});
                   return std::make_unique<ConstantSolver>();
                 });
  }
  const auto world = testutil::random_world(1, 2, 6, 8, 10, 20.0);
  const auto problem = world.problem();
  SolverContext context(1);
  const auto outcome =
      registry.make("noop_for_test")->run(problem, context);
  EXPECT_DOUBLE_EQ(outcome.hit_ratio, 0.0);
  EXPECT_THROW(registry.add("noop_for_test", "dup", nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching::core
