#include <gtest/gtest.h>

#include "src/core/independent_caching.h"
#include "src/core/storage.h"
#include "src/core/trimcaching_gen.h"
#include "src/core/trimcaching_spec.h"
#include "src/model/lora_generator.h"
#include "tests/test_util.h"

namespace trimcaching::core {
namespace {

using support::megabytes;
using support::Rng;

void expect_storage_feasible(const PlacementProblem& problem,
                             const PlacementSolution& placement) {
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().dedup_size(placement.models_on(m)),
              problem.capacity(m))
        << "server " << m;
  }
}

void expect_naive_storage_feasible(const PlacementProblem& problem,
                                   const PlacementSolution& placement) {
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().naive_size(placement.models_on(m)),
              problem.capacity(m))
        << "server " << m;
  }
}

class AlgorithmsOnRandomWorlds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgorithmsOnRandomWorlds, GenFeasibleAndConsistent) {
  const auto world = testutil::random_world(GetParam(), 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  const auto result = trimcaching_gen(problem);
  expect_storage_feasible(problem, result.placement);
  EXPECT_NEAR(result.hit_ratio, expected_hit_ratio(problem, result.placement), 1e-12);
  EXPECT_GE(result.hit_ratio, 0.0);
  EXPECT_LE(result.hit_ratio, 1.0 + 1e-12);
}

TEST_P(AlgorithmsOnRandomWorlds, LazyEqualsNaiveHitRatio) {
  const auto world = testutil::random_world(GetParam() + 100, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  const auto lazy = trimcaching_gen(problem, GenConfig{.lazy = true});
  const auto naive = trimcaching_gen(problem, GenConfig{.lazy = false});
  // Tie-breaks can differ, but greedy value sequences coincide.
  EXPECT_NEAR(lazy.hit_ratio, naive.hit_ratio, 1e-9);
  // Lazy evaluation must not do more work than the naive rescans.
  EXPECT_LE(lazy.gain_evaluations, naive.gain_evaluations);
}

TEST_P(AlgorithmsOnRandomWorlds, SpecFeasibleAndGainDecomposition) {
  const auto world = testutil::random_world(GetParam() + 200, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  SpecConfig config;
  config.solver.mode = DpMode::kWeightQuantized;
  config.solver.weight_states = 40;  // exact for whole-MB instances
  const auto result = trimcaching_spec(problem, config);
  expect_storage_feasible(problem, result.placement);
  EXPECT_NEAR(result.hit_ratio, expected_hit_ratio(problem, result.placement), 1e-12);
  // Eq. 12: U(X̂) = Σ_m Û_m(X̂_m).
  double sum = 0;
  for (const double gain : result.per_server_gain) sum += gain;
  EXPECT_NEAR(sum, result.hit_ratio, 1e-12);
}

TEST_P(AlgorithmsOnRandomWorlds, IndependentFeasibleUnderNaiveStorage) {
  const auto world = testutil::random_world(GetParam() + 300, 3, 10, 12, 14, 40.0);
  const auto problem = world.problem();
  const auto result = independent_caching(problem);
  expect_naive_storage_feasible(problem, result.placement);
  // Naive-feasible implies dedup-feasible.
  expect_storage_feasible(problem, result.placement);
  EXPECT_NEAR(result.hit_ratio, expected_hit_ratio(problem, result.placement), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmsOnRandomWorlds,
                         ::testing::Range<std::uint64_t>(0, 12));

// On sharing-heavy libraries, dedup-aware algorithms must dominate the
// independent baseline (this is the paper's headline claim).
class SharingAdvantage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharingAdvantage, GenBeatsOrMatchesIndependentOnLora) {
  Rng rng(GetParam());
  wireless::RadioConfig radio;
  auto topology = wireless::sample_topology(wireless::Area{800.0}, radio, 3, 10,
                                            support::gigabytes(8), rng);
  model::LoraLibraryConfig lora;
  lora.num_foundations = 2;
  lora.adapters_per_foundation = 10;
  auto library = model::build_lora_library(lora, rng);
  workload::RequestConfig req;
  req.deadline_min_s = 20.0;  // LLM-scale payloads need looser deadlines
  req.deadline_max_s = 40.0;
  auto requests =
      workload::RequestModel::generate(10, library.num_models(), req, rng);
  const testutil::World world{std::move(topology), std::move(library),
                              std::move(requests)};
  const auto problem = world.problem();
  const auto gen = trimcaching_gen(problem);
  const auto indep = independent_caching(problem);
  EXPECT_GE(gen.hit_ratio, indep.hit_ratio - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharingAdvantage,
                         ::testing::Range<std::uint64_t>(0, 6));

// -------------------------------------------------------- deterministic cases

TEST(TrimCachingGen, PicksHighestGainFirst) {
  // One server, capacity for exactly one model; model 1 twice as popular.
  const auto world = testutil::random_world(42, 1, 6, 8, 10, 12.0);
  const auto problem = world.problem();
  const auto result = trimcaching_gen(problem);
  // Greedy invariant: no remaining feasible placement has positive gain.
  CoverageState coverage(problem);
  ServerStorage storage(problem.library(), problem.capacity(0));
  for (const ModelId i : result.placement.models_on(0)) {
    coverage.add(0, i);
    storage.add(i);
  }
  for (ModelId i = 0; i < problem.num_models(); ++i) {
    if (result.placement.placed(0, i)) continue;
    if (storage.fits(i)) {
      EXPECT_LE(coverage.marginal_mass(0, i), 1e-12)
          << "greedy left a feasible positive-gain model " << i;
    }
  }
}

TEST(TrimCachingGen, ParkedModelsRevivedBySharing) {
  // Server capacity 30 MB. Solo model (28 MB, utility high) is placed first;
  // sharing pair (20+5, 20+5) then only fits if parked entries are revived
  // after placement changes. Construct so greedy places shared model m0
  // first, making m1 affordable (cost 5 MB).
  model::ModelLibrary lib;
  const BlockId shared = lib.add_block(megabytes(20), "shared");
  const BlockId a = lib.add_block(megabytes(5), "a");
  const BlockId b = lib.add_block(megabytes(5), "b");
  lib.add_model("m0", "f", {shared, a});
  lib.add_model("m1", "f", {shared, b});
  lib.finalize();

  wireless::RadioConfig radio;
  Rng rng(1);
  auto topology = wireless::sample_topology(wireless::Area{200.0}, radio, 1, 4,
                                            megabytes(30), rng);
  workload::RequestConfig req;
  auto requests = workload::RequestModel::generate(4, 2, req, rng);
  const testutil::World world{std::move(topology), std::move(lib), std::move(requests)};
  const auto problem = world.problem();
  const auto result = trimcaching_gen(problem);
  // Both models fit together (30 MB dedup); greedy must find both.
  EXPECT_EQ(result.placement.models_on(0).size(), 2u);
}

TEST(TrimCachingSpec, ServerOrderAblationRuns) {
  const auto world = testutil::random_world(7, 4, 10, 10, 12, 35.0);
  const auto problem = world.problem();
  SpecConfig natural;
  SpecConfig by_mass;
  by_mass.order = SpecConfig::ServerOrder::kByReachableMassDesc;
  const auto a = trimcaching_spec(problem, natural);
  const auto b = trimcaching_spec(problem, by_mass);
  expect_storage_feasible(problem, a.placement);
  expect_storage_feasible(problem, b.placement);
  EXPECT_GT(a.hit_ratio + b.hit_ratio, 0.0);
}

TEST(TrimCachingSpec, CountsCombinations) {
  const auto world = testutil::random_world(8, 2, 6, 8, 10, 30.0);
  const auto problem = world.problem();
  const auto result = trimcaching_spec(problem);
  EXPECT_GT(result.combinations_visited, 0u);
  EXPECT_EQ(result.per_server_gain.size(), problem.num_servers());
}

}  // namespace
}  // namespace trimcaching::core
