#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/core/storage.h"
#include "tests/test_util.h"

namespace trimcaching::core {
namespace {

using support::megabytes;

model::ModelLibrary shared_pair_library() {
  model::ModelLibrary lib;
  const BlockId shared = lib.add_block(megabytes(20), "shared");
  const BlockId a = lib.add_block(megabytes(5), "a");
  const BlockId b = lib.add_block(megabytes(6), "b");
  lib.add_model("m0", "f", {shared, a});
  lib.add_model("m1", "f", {shared, b});
  lib.finalize();
  return lib;
}

// -------------------------------------------------------------- ServerStorage

TEST(ServerStorage, IncrementalCostDeduplicates) {
  const auto lib = shared_pair_library();
  ServerStorage storage(lib, megabytes(40));
  EXPECT_EQ(storage.incremental_cost(0), megabytes(25));
  storage.add(0);
  EXPECT_EQ(storage.used(), megabytes(25));
  // m1 shares the 20 MB block: only its 6 MB specific part is new.
  EXPECT_EQ(storage.incremental_cost(1), megabytes(6));
  EXPECT_TRUE(storage.fits(1));
  storage.add(1);
  EXPECT_EQ(storage.used(), megabytes(31));
  // Re-adding costs nothing.
  EXPECT_EQ(storage.incremental_cost(0), 0u);
}

TEST(ServerStorage, CapacityEnforced) {
  const auto lib = shared_pair_library();
  ServerStorage storage(lib, megabytes(24));
  EXPECT_FALSE(storage.fits(0));  // 25 MB > 24 MB
  EXPECT_THROW(storage.add(0), std::logic_error);
  EXPECT_EQ(storage.used(), 0u);
}

TEST(ServerStorage, MatchesDedupStorageFunction) {
  const auto lib = shared_pair_library();
  ServerStorage storage(lib, megabytes(100));
  storage.add(0);
  storage.add(1);
  EXPECT_EQ(storage.used(), dedup_storage(lib, {0, 1}));
  EXPECT_EQ(storage.cached_blocks().count(), 3u);
}

// ------------------------------------------------------- Objective / coverage

class ObjectiveTest : public ::testing::Test {
 protected:
  ObjectiveTest() : world_(testutil::random_world(17, 3, 8, 10, 12, 60.0)) {}
  testutil::World world_;
};

TEST_F(ObjectiveTest, EmptyPlacementScoresZero) {
  const auto problem = world_.problem();
  PlacementSolution empty(problem.num_servers(), problem.num_models());
  EXPECT_DOUBLE_EQ(expected_hit_ratio(problem, empty), 0.0);
}

TEST_F(ObjectiveTest, FullPlacementReachesCeiling) {
  const auto problem = world_.problem();
  PlacementSolution full(problem.num_servers(), problem.num_models());
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    for (ModelId i = 0; i < problem.num_models(); ++i) full.place(m, i);
  }
  EXPECT_NEAR(expected_hit_ratio(problem, full),
              problem.reachable_mass() / problem.total_mass(), 1e-12);
}

TEST_F(ObjectiveTest, IncrementalMatchesScratch) {
  const auto problem = world_.problem();
  support::Rng rng(3);
  CoverageState coverage(problem);
  PlacementSolution placement(problem.num_servers(), problem.num_models());
  for (int step = 0; step < 12; ++step) {
    const auto m = static_cast<ServerId>(rng.index(problem.num_servers()));
    const auto i = static_cast<ModelId>(rng.index(problem.num_models()));
    coverage.add(m, i);
    placement.place(m, i);
    EXPECT_NEAR(coverage.hit_ratio(), expected_hit_ratio(problem, placement), 1e-12);
  }
}

TEST_F(ObjectiveTest, MarginalGainMatchesDifference) {
  const auto problem = world_.problem();
  CoverageState coverage(problem);
  PlacementSolution placement(problem.num_servers(), problem.num_models());
  coverage.add(0, 0);
  placement.place(0, 0);
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    for (ModelId i = 0; i < problem.num_models(); ++i) {
      PlacementSolution next = placement;
      next.place(m, i);
      const double scratch_gain =
          expected_hit_ratio(problem, next) - coverage.hit_ratio();
      EXPECT_NEAR(coverage.marginal_gain(m, i), scratch_gain, 1e-12);
    }
  }
}

TEST_F(ObjectiveTest, MarginalGainZeroAfterAdd) {
  const auto problem = world_.problem();
  CoverageState coverage(problem);
  coverage.add(1, 2);
  EXPECT_DOUBLE_EQ(coverage.marginal_mass(1, 2), 0.0);
}

TEST_F(ObjectiveTest, EligibleConsistentWithHitLists) {
  const auto problem = world_.problem();
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    for (ModelId i = 0; i < problem.num_models(); ++i) {
      for (const HitEntry& entry : problem.hit_list(m, i)) {
        EXPECT_TRUE(problem.eligible(m, entry.user, i));
        EXPECT_GT(entry.mass, 0.0);
        EXPECT_DOUBLE_EQ(entry.mass,
                         problem.requests().probability(entry.user, i));
      }
    }
  }
}

TEST_F(ObjectiveTest, ReachableMassBoundsTotal) {
  const auto problem = world_.problem();
  EXPECT_LE(problem.reachable_mass(), problem.total_mass() + 1e-12);
  EXPECT_GE(problem.reachable_mass(), 0.0);
}

// ------------------------------------------------------------ PlacementSolution

TEST(PlacementSolution, PlaceIsIdempotent) {
  PlacementSolution p(2, 3);
  p.place(1, 2);
  p.place(1, 2);
  EXPECT_EQ(p.total_placements(), 1u);
  EXPECT_TRUE(p.placed(1, 2));
  EXPECT_FALSE(p.placed(0, 2));
  EXPECT_EQ(p.models_on(1), std::vector<ModelId>({2}));
  EXPECT_EQ(p.holders_of(2), std::vector<ServerId>({1}));
}

TEST(PlacementSolution, BoundsChecked) {
  PlacementSolution p(2, 3);
  EXPECT_THROW(p.place(2, 0), std::out_of_range);
  EXPECT_THROW(p.place(0, 3), std::out_of_range);
  EXPECT_THROW((void)p.placed(2, 0), std::out_of_range);
  EXPECT_THROW((void)p.models_on(2), std::out_of_range);
  EXPECT_THROW((void)p.holders_of(3), std::out_of_range);
  EXPECT_THROW(PlacementSolution(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching::core
