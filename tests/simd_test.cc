// Contracts of the portable SIMD layer (support/simd.h) and the raw-speed
// support plumbing that rides on it:
//
//   * rayleigh_gains: every available backend derives the same uniform bits
//     (gains differ from the scalar reference by transcendental rounding
//     only, <= kMaxUlpError + 1 ULP elementwise) across lane-width and tail
//     sweeps, with no out-of-bounds writes;
//   * inv_rate_from_gains: backend-vs-scalar differences stay within the
//     documented relative bound kMaxRelError, including the zero-bandwidth
//     +inf guard rows;
//   * min_span / min_gather are BIT-exact across backends at every sweep
//     size, including n == 0 (+inf);
//   * runtime dispatch: the active backend is available, force_backend
//     overrides it (and rejects unavailable backends), clear_forced_backend
//     restores auto-detection;
//   * FadingKernel::kSimd is invariant to thread count and lane-block
//     grouping (bit-identical summaries at threads 1 vs 8 across block and
//     tail realization counts), and switching backends moves the summary by
//     at most a tolerance over seeded scenarios;
//   * the channel's batch sampler delegates to the dispatched backend;
//   * Rng::stream_key matches Rng::at(...).seed();
//   * WorkerArena reuses and shrinks slot buffers; parallel_for_chunks
//     partitions exactly; FirstTouchArray/first_touch_copy preserve values;
//   * PlacementSolution::revision moves on real mutations only, and the
//     EvalPlan lowering cache keyed on it reports builds/hits (also through
//     Evaluator::plan_stats) and invalidates on apply_delta.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/core/solver_registry.h"
#include "src/sim/eval_plan.h"
#include "src/sim/evaluator.h"
#include "src/sim/scenario.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"
#include "src/support/simd.h"
#include "src/support/units.h"
#include "src/wireless/channel.h"
#include "src/wireless/topology.h"

namespace trimcaching {
namespace {

namespace simd = support::simd;
using support::Rng;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sweep sizes: every lane phase of the 4-wide and 2-wide backends plus
/// straddling tails and a bulk size.
const std::vector<std::size_t>& sweep_sizes() {
  static const std::vector<std::size_t> sizes = {0,  1,  2,  3,  4,   5,   7,
                                                 8,  9,  11, 15, 16,  17,  31,
                                                 63, 64, 67, 96, 128, 1000};
  return sizes;
}

/// Backends to test: scalar always; the dispatched one when it differs.
std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::active_backend() != simd::Backend::kScalar) {
    backends.push_back(simd::active_backend());
  }
  return backends;
}

/// Distance in ULPs between two finite same-sign doubles.
std::uint64_t ulp_distance(double a, double b) {
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

TEST(SimdBackend, RayleighGainsMatchScalarWithinUlpBound) {
  const simd::Ops& scalar = simd::ops(simd::Backend::kScalar);
  for (const simd::Backend backend : available_backends()) {
    const simd::Ops& ops = simd::ops(backend);
    for (const std::size_t n : sweep_sizes()) {
      // Canary-padded outputs: the kernels must not write past n.
      std::vector<double> got(n + 8, -7.0);
      std::vector<double> want(n + 8, -7.0);
      const std::uint64_t key = 0x1234abcdull * (n + 1);
      ops.rayleigh_gains(key, n, got.data());
      scalar.rayleigh_gains(key, n, want.data());
      for (std::size_t l = 0; l < n; ++l) {
        ASSERT_GE(want[l], 0.0);
        ASSERT_LE(ulp_distance(got[l], want[l]),
                  static_cast<std::uint64_t>(simd::kMaxUlpError) + 1)
            << simd::backend_name(backend) << " n=" << n << " l=" << l;
      }
      for (std::size_t l = n; l < n + 8; ++l) {
        ASSERT_EQ(got[l], -7.0) << "out-of-bounds write at " << l;
      }
    }
  }
}

TEST(SimdBackend, InvRateMatchesScalarWithinRelativeBound) {
  const simd::Ops& scalar = simd::ops(simd::Backend::kScalar);
  for (const simd::Backend backend : available_backends()) {
    const simd::Ops& ops = simd::ops(backend);
    for (const std::size_t n : sweep_sizes()) {
      Rng rng(n * 13 + 5);
      std::vector<double> bw(n), snr(n), gains(n);
      for (std::size_t l = 0; l < n; ++l) {
        // Every fourth link zero-bandwidth: the +inf guard path.
        bw[l] = l % 4 == 3 ? 0.0 : rng.uniform(1e6, 4e7);
        snr[l] = rng.uniform(0.01, 100.0);
        gains[l] = -std::log(rng.uniform(1e-12, 1.0));
      }
      std::vector<double> got(n + 8, -7.0), want(n + 8, -7.0);
      ops.inv_rate_from_gains(bw.data(), snr.data(), gains.data(), n, got.data());
      scalar.inv_rate_from_gains(bw.data(), snr.data(), gains.data(), n,
                                 want.data());
      for (std::size_t l = 0; l < n; ++l) {
        if (std::isinf(want[l])) {
          ASSERT_EQ(got[l], want[l])
              << simd::backend_name(backend) << " n=" << n << " l=" << l;
        } else {
          ASSERT_LE(std::abs(got[l] - want[l]), simd::kMaxRelError * want[l])
              << simd::backend_name(backend) << " n=" << n << " l=" << l;
        }
      }
      for (std::size_t l = n; l < n + 8; ++l) {
        ASSERT_EQ(got[l], -7.0) << "out-of-bounds write at " << l;
      }
    }
  }
}

TEST(SimdBackend, MinReductionsBitExactAcrossBackends) {
  const simd::Ops& scalar = simd::ops(simd::Backend::kScalar);
  for (const simd::Backend backend : available_backends()) {
    const simd::Ops& ops = simd::ops(backend);
    for (const std::size_t n : sweep_sizes()) {
      Rng rng(n * 29 + 3);
      std::vector<double> x(n);
      std::vector<std::uint32_t> idx(n);
      for (std::size_t l = 0; l < n; ++l) {
        // Mix in +inf entries — the kernels' only non-finite input class.
        x[l] = rng.bernoulli(0.1) ? kInf : rng.uniform(1e-9, 1e3);
        idx[l] = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      }
      const double span_got = ops.min_span(x.data(), n);
      const double span_want = scalar.min_span(x.data(), n);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(span_got),
                std::bit_cast<std::uint64_t>(span_want))
          << simd::backend_name(backend) << " n=" << n;
      const double gather_got = ops.min_gather(x.data(), idx.data(), n);
      const double gather_want = scalar.min_gather(x.data(), idx.data(), n);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(gather_got),
                std::bit_cast<std::uint64_t>(gather_want))
          << simd::backend_name(backend) << " n=" << n;
      if (n == 0) {
        ASSERT_EQ(span_got, kInf);
        ASSERT_EQ(gather_got, kInf);
      }
    }
  }
}

TEST(SimdDispatch, ActiveBackendIsAvailableAndForceable) {
  const simd::Backend detected = simd::active_backend();
  ASSERT_TRUE(simd::backend_available(detected));
  ASSERT_TRUE(simd::backend_available(simd::Backend::kScalar));
  ASSERT_STREQ(simd::backend_name(simd::Backend::kScalar), "scalar");
  ASSERT_EQ(simd::lane_width(simd::Backend::kScalar), 1u);
  ASSERT_GE(simd::lane_width(detected), 1u);

  simd::force_backend(simd::Backend::kScalar);
  ASSERT_EQ(simd::active_backend(), simd::Backend::kScalar);
  ASSERT_EQ(&simd::ops(), &simd::ops(simd::Backend::kScalar));
  simd::clear_forced_backend();
  ASSERT_EQ(simd::active_backend(), detected);

  for (const simd::Backend backend :
       {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_available(backend)) continue;
    EXPECT_THROW(simd::force_backend(backend), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(simd::ops(backend)), std::invalid_argument);
    // A failed force must not disturb the dispatch decision.
    EXPECT_EQ(simd::active_backend(), detected);
  }
}

TEST(SimdDispatch, ChannelBatchSamplerFollowsDispatch) {
  constexpr std::size_t kN = 37;
  const std::uint64_t key = 0xfeedf00dull;
  std::vector<double> via_channel(kN), via_ops(kN);
  simd::force_backend(simd::Backend::kScalar);
  wireless::sample_rayleigh_power_gains(key, kN, via_channel.data());
  simd::ops(simd::Backend::kScalar).rayleigh_gains(key, kN, via_ops.data());
  simd::clear_forced_backend();
  for (std::size_t l = 0; l < kN; ++l) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(via_channel[l]),
              std::bit_cast<std::uint64_t>(via_ops[l]));
  }
}

TEST(RngStreamKey, MatchesAtSeedWithoutEngineConstruction) {
  const Rng rng(0xdeadbeefull);
  for (const std::uint64_t s : {0ull, 1ull, 0xFADEull}) {
    for (const std::uint64_t i : {0ull, 1ull, 7ull, 1000ull}) {
      ASSERT_EQ(rng.stream_key(s, i), rng.at(s, i).seed());
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end SIMD fading kernel over seeded scenarios.

sim::ScenarioConfig small_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.num_servers = 3 + seed % 6;
  config.num_users = 6 + (seed * 7) % 25;
  config.library_size = 12;
  config.special.models_per_family = 10;
  config.capacity_bytes = support::megabytes(400);
  return config;
}

core::PlacementSolution gen_placement(const sim::Scenario& scenario, Rng rng) {
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(rng.fork(11));
  return core::SolverRegistry::instance()
      .make("gen")
      ->run(problem, context)
      .placement;
}

void expect_same_summary(const support::Summary& a, const support::Summary& b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.mean), std::bit_cast<std::uint64_t>(b.mean));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stddev),
            std::bit_cast<std::uint64_t>(b.stddev));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.min), std::bit_cast<std::uint64_t>(b.min));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.max), std::bit_cast<std::uint64_t>(b.max));
  EXPECT_EQ(a.count, b.count);
}

TEST(SimdFadingKernel, ThreadAndLaneBlockInvariant) {
  // Realization counts chosen to hit whole-block, tail-only and mixed
  // groupings of the 4-lane blocked hit pass; thread counts reshuffle the
  // chunk boundaries. All must be bit-identical.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const sim::Scenario scenario = sim::build_scenario(small_config(seed), rng);
    const sim::EvalPlan plan(scenario.topology, scenario.library,
                             scenario.requests);
    const auto placement = gen_placement(scenario, rng);
    const Rng fading(seed * 17 + 1);
    for (const std::size_t realizations : {3ull, 8ull, 13ull}) {
      const auto serial = plan.fading_hit_ratio(placement, realizations, fading,
                                                1, sim::FadingKernel::kSimd);
      const auto wide = plan.fading_hit_ratio(placement, realizations, fading,
                                              8, sim::FadingKernel::kSimd);
      expect_same_summary(serial, wide);
    }
  }
}

TEST(SimdFadingKernel, BackendToleranceOverSeededScenarios) {
  // Backend choice perturbs gains/inverse rates by transcendental rounding
  // only; a realization's ratio can move only when a request sits exactly on
  // its deadline knife-edge, so summaries agree to tight tolerance (and are
  // bit-identical in almost every seed). Run at threads 1 and 8.
  const simd::Backend detected = simd::active_backend();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const sim::Scenario scenario = sim::build_scenario(small_config(seed), rng);
    const sim::EvalPlan plan(scenario.topology, scenario.library,
                             scenario.requests);
    const auto placement = gen_placement(scenario, rng);
    const Rng fading(seed * 31 + 7);

    simd::force_backend(simd::Backend::kScalar);
    const auto scalar1 = plan.fading_hit_ratio(placement, 16, fading, 1,
                                               sim::FadingKernel::kSimd);
    const auto scalar8 = plan.fading_hit_ratio(placement, 16, fading, 8,
                                               sim::FadingKernel::kSimd);
    simd::clear_forced_backend();
    const auto active1 = plan.fading_hit_ratio(placement, 16, fading, 1,
                                               sim::FadingKernel::kSimd);
    const auto active8 = plan.fading_hit_ratio(placement, 16, fading, 8,
                                               sim::FadingKernel::kSimd);
    ASSERT_EQ(simd::active_backend(), detected);

    expect_same_summary(scalar1, scalar8);
    expect_same_summary(active1, active8);
    EXPECT_NEAR(scalar1.mean, active1.mean, 1e-9) << "seed " << seed;
    EXPECT_NEAR(scalar1.min, active1.min, 1e-9) << "seed " << seed;
    EXPECT_NEAR(scalar1.max, active1.max, 1e-9) << "seed " << seed;
    EXPECT_EQ(scalar1.count, active1.count);
  }
}

// ---------------------------------------------------------------------------
// Raw-speed support plumbing.

TEST(WorkerArena, ReusesAndShrinksSlotBuffers) {
  support::WorkerArena arena;
  std::vector<double>& a = arena.doubles(0, 100);
  ASSERT_EQ(a.size(), 100u);
  a[0] = 42.0;
  // Growing another slot must not move slot 0 (deque-backed storage).
  std::vector<double>& b = arena.doubles(9, 50);
  ASSERT_EQ(b.size(), 50u);
  std::vector<double>& a_again = arena.doubles(0, 100);
  ASSERT_EQ(&a, &a_again);
  ASSERT_EQ(a_again[0], 42.0);

  // Shrink policy: a slot grown past 4096 doubles shrinks only when the
  // request falls below a quarter of its capacity — near-capacity reuse
  // keeps the allocation (no thrash).
  std::vector<double>& big = arena.doubles(1, 100000);
  ASSERT_GE(big.capacity(), 100000u);
  std::vector<double>& kept = arena.doubles(1, 30000);
  ASSERT_EQ(kept.size(), 30000u);
  ASSERT_GE(kept.capacity(), 100000u);
  std::vector<double>& shrunk = arena.doubles(1, 10);
  ASSERT_EQ(shrunk.size(), 10u);
  ASSERT_LT(shrunk.capacity(), 100000u);

  arena.release();
  ASSERT_EQ(arena.doubles(0, 5).size(), 5u);

  // The thread-local accessor hands back the same arena every call, and
  // trim_worker_arenas (quiescent here) leaves it usable.
  ASSERT_EQ(&support::this_worker_arena(), &support::this_worker_arena());
  (void)support::this_worker_arena().doubles(0, 64);
  support::trim_worker_arenas();
  ASSERT_EQ(support::this_worker_arena().doubles(0, 8).size(), 8u);
}

TEST(ParallelForChunks, PartitionsExactlyOnce) {
  for (const std::size_t n : {0ull, 1ull, 2ull, 5ull, 16ull, 17ull, 100ull}) {
    for (const std::size_t threads : {1ull, 3ull, 8ull}) {
      std::vector<int> cover(n, 0);
      support::parallel_for_chunks(n, threads,
                                   [&](std::size_t begin, std::size_t end) {
                                     ASSERT_LE(begin, end);
                                     ASSERT_LE(end, n);
                                     for (std::size_t i = begin; i < end; ++i) {
                                       ++cover[i];  // chunks are disjoint
                                     }
                                   });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(cover[i], 1) << "n=" << n << " threads=" << threads
                               << " i=" << i;
      }
    }
  }
}

TEST(FirstTouchArray, ReallocateSwapAndParallelCopy) {
  support::FirstTouchArray arr;
  ASSERT_TRUE(arr.empty());
  arr.reallocate(100);
  ASSERT_EQ(arr.size(), 100u);

  std::vector<double> src(100);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = 0.5 * i;
  support::first_touch_copy(arr.data(), src.data(), src.size(), 4);
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(arr[i], src[i]) << i;
  }

  // Shrinking reuses the allocation; growing reallocates. Either way the
  // size is exact.
  const double* before = arr.data();
  arr.reallocate(10);
  ASSERT_EQ(arr.size(), 10u);
  ASSERT_EQ(arr.data(), before);
  arr.reallocate(200);
  ASSERT_EQ(arr.size(), 200u);

  support::FirstTouchArray other(3);
  arr.swap(other);
  ASSERT_EQ(arr.size(), 3u);
  ASSERT_EQ(other.size(), 200u);
}

// ---------------------------------------------------------------------------
// Placement revision + lowering cache.

TEST(PlacementRevision, MovesOnRealMutationsOnly) {
  core::PlacementSolution a(3, 4);
  core::PlacementSolution b(3, 4);
  ASSERT_NE(a.revision(), 0u);
  ASSERT_NE(b.revision(), 0u);
  ASSERT_NE(a.revision(), b.revision());

  const std::uint64_t r0 = a.revision();
  a.place(0, 1);
  const std::uint64_t r1 = a.revision();
  ASSERT_NE(r1, r0);
  a.place(0, 1);  // idempotent re-place: no content change, no new revision
  ASSERT_EQ(a.revision(), r1);
  a.remove(0, 1);
  ASSERT_NE(a.revision(), r1);

  // Copies share the revision (equal revision implies equal content), and
  // diverge as soon as either side mutates.
  a.place(1, 2);
  core::PlacementSolution copy = a;
  ASSERT_EQ(copy.revision(), a.revision());
  copy.place(2, 3);
  ASSERT_NE(copy.revision(), a.revision());
}

TEST(LoweringCache, HitsOnSameRevisionRebuildsOnChange) {
  Rng rng(4);
  const sim::Scenario scenario = sim::build_scenario(small_config(4), rng);
  const sim::EvalPlan plan(scenario.topology, scenario.library,
                           scenario.requests);
  auto placement = gen_placement(scenario, rng);
  const Rng fading(99);

  ASSERT_EQ(plan.lowering_builds(), 0u);
  (void)plan.fading_hit_ratio(placement, 4, fading, 1, sim::FadingKernel::kSimd);
  ASSERT_EQ(plan.lowering_builds(), 1u);
  ASSERT_EQ(plan.lowering_hits(), 0u);

  // Same revision: both lowered kernels reuse the cache.
  (void)plan.fading_hit_ratio(placement, 4, fading, 1, sim::FadingKernel::kSimd);
  (void)plan.fading_hit_ratio(placement, 4, fading, 1,
                              sim::FadingKernel::kBatched);
  ASSERT_EQ(plan.lowering_builds(), 1u);
  ASSERT_EQ(plan.lowering_hits(), 2u);

  // The scalar reference kernel does not touch the lowering at all.
  (void)plan.fading_hit_ratio(placement, 4, fading, 1,
                              sim::FadingKernel::kScalarReference);
  ASSERT_EQ(plan.lowering_builds(), 1u);
  ASSERT_EQ(plan.lowering_hits(), 2u);

  // A real mutation moves the revision: rebuild.
  const ModelId model = scenario.topology.num_users() % 12;
  if (placement.placed(0, model)) {
    placement.remove(0, model);
  } else {
    placement.place(0, model);
  }
  (void)plan.fading_hit_ratio(placement, 4, fading, 1, sim::FadingKernel::kSimd);
  ASSERT_EQ(plan.lowering_builds(), 2u);
  ASSERT_EQ(plan.lowering_hits(), 2u);
}

TEST(LoweringCache, InvalidatedByApplyDeltaAndSurfacedByEvaluator) {
  Rng rng(6);
  const sim::ScenarioConfig config = small_config(6);
  const sim::Scenario scenario = sim::build_scenario(config, rng);
  const auto placement = gen_placement(scenario, rng);
  const Rng fading(5);

  // Evaluator path: the per-plan counters accumulate into plan_stats.
  wireless::NetworkTopology topology = scenario.topology;
  sim::Evaluator evaluator(topology, scenario.library, scenario.requests);
  (void)evaluator.fading_hit_ratio(placement, 4, fading, 1);
  (void)evaluator.fading_hit_ratio(placement, 4, fading, 1);
  ASSERT_EQ(evaluator.plan_stats().lowering_builds, 1u);
  ASSERT_EQ(evaluator.plan_stats().lowering_hits, 1u);

  // A mobility update changes the link structure the lowering indexes into,
  // so the cached lowering must be discarded even though the placement (and
  // its revision) did not move — whether the plan is delta-patched or fully
  // rebuilt, the next call must re-lower.
  std::vector<wireless::UserMove> moves;
  moves.push_back(wireless::UserMove{
      0, wireless::Point{topology.area().side_m * 0.5,
                         topology.area().side_m * 0.5}});
  (void)topology.apply_user_moves(moves, 1.0);
  (void)evaluator.fading_hit_ratio(placement, 4, fading, 1);
  ASSERT_EQ(evaluator.plan_stats().lowering_builds, 2u);
  ASSERT_EQ(evaluator.plan_stats().lowering_hits, 1u);
}

}  // namespace
}  // namespace trimcaching
