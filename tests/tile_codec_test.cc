// Contracts of the binary tile format (io/tile_codec.h):
//
//   * round-trip fidelity: a borrowed tile sub-view serialized and parsed
//     back as an owning problem reproduces every solver-visible quantity
//     *bitwise* — link arrays, hit lists, request/reachable mass, payload
//     bits — and registry solvers produce bit-identical outcomes on both;
//   * tile results round-trip placement rows in placement order plus all
//     outcome scalars;
//   * hardening: every truncated prefix and every single-byte corruption of
//     a valid file fails with std::invalid_argument (a diagnostic, never a
//     crash) — the coordinator survives any bad worker output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/solver_registry.h"
#include "src/io/tile_codec.h"
#include "src/sim/scenario.h"

namespace trimcaching::io {
namespace {

using support::Rng;

sim::Scenario tiny_scenario(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 12;
  config.library_size = 10;
  config.special.models_per_family = 5;
  config.requests.models_per_user = 4;
  Rng rng(seed);
  return sim::build_scenario(config, rng);
}

/// Same shape with a binding per-server compute capacity: the writer must
/// switch to the v2 format and ship the compute section.
sim::Scenario tiny_joint_scenario(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 12;
  config.library_size = 10;
  config.special.models_per_family = 5;
  config.requests.models_per_user = 4;
  config.compute_capacity = 0.1;
  Rng rng(seed);
  return sim::build_scenario(config, rng);
}

// Byte-surgery helpers for the forward-compat legs: the codec's envelope is
// magic(4) + version(4) + body + FNV-1a-64 checksum(8), all little-endian.

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t b = 0; b < n; ++b) {
    h ^= static_cast<unsigned char>(data[b]);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Recomputes and replaces the trailing checksum so a deliberately forged
/// body passes the envelope check and reaches the structural parser.
std::string reseal(std::string bytes) {
  bytes.resize(bytes.size() - 8);
  const std::uint64_t h = fnv1a(bytes.data(), bytes.size());
  for (int b = 0; b < 8; ++b) {
    bytes.push_back(static_cast<char>((h >> (8 * b)) & 0xff));
  }
  return bytes;
}

std::uint32_t version_of(const std::string& bytes) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[4 + b]))
         << (8 * b);
  }
  return v;
}

void set_version(std::string& bytes, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) bytes[4 + b] = static_cast<char>((v >> (8 * b)) & 0xff);
}

void set_u32_at(std::string& bytes, std::size_t at, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) bytes[at + b] = static_cast<char>((v >> (8 * b)) & 0xff);
}

void set_f64_at(std::string& bytes, std::size_t at, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int b = 0; b < 8; ++b) {
    bytes[at + b] = static_cast<char>((bits >> (8 * b)) & 0xff);
  }
}

/// Total request cells the view serializes (one inference cost per cell in
/// the v2 compute section) — used to locate section offsets from the tail.
std::size_t request_cells(const core::PlacementProblem& problem) {
  std::size_t cells = 0;
  for (UserId k = 0; k < problem.num_users(); ++k) {
    cells += problem.requests().requested_models(problem.request_user(k)).size();
  }
  return cells;
}

TileViewHeader sample_header() {
  TileViewHeader header;
  header.algo = "gen:lazy=1";
  header.threads = 3;
  header.tile_index = 7;
  header.solver_seed = 0x1234'5678'9abc'def0ull;
  header.time_budget_s = 2.5;
  return header;
}

TEST(TileCodec, ViewRoundTripReproducesTheSubViewBitwise) {
  const sim::Scenario scenario = tiny_scenario(41);
  const std::vector<ServerId> servers = {0, 2, 3};
  const std::vector<UserId> users = {1, 3, 4, 7, 8, 11};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);

  const std::string bytes = serialize_tile_view(sample_header(), view);
  TileView parsed = parse_tile_view(bytes);
  EXPECT_EQ(parsed.header.algo, "gen:lazy=1");
  EXPECT_EQ(parsed.header.threads, 3u);
  EXPECT_EQ(parsed.header.tile_index, 7u);
  EXPECT_EQ(parsed.header.solver_seed, 0x1234'5678'9abc'def0ull);
  EXPECT_DOUBLE_EQ(parsed.header.time_budget_s, 2.5);

  const core::PlacementProblem owned(std::move(parsed.data));
  EXPECT_TRUE(owned.owns_data());
  EXPECT_TRUE(owned.is_view());
  EXPECT_THROW((void)owned.topology(), std::logic_error);

  ASSERT_EQ(owned.num_servers(), view.num_servers());
  ASSERT_EQ(owned.num_users(), view.num_users());
  ASSERT_EQ(owned.num_models(), view.num_models());
  // Bitwise agreement of every quantity a solver consumes: EXPECT_EQ on
  // doubles here is deliberate — the contract is exactness, not closeness.
  EXPECT_EQ(owned.total_mass(), view.total_mass());
  EXPECT_EQ(owned.reachable_mass(), view.reachable_mass());
  EXPECT_EQ(owned.backhaul_bps(), view.backhaul_bps());
  for (ModelId i = 0; i < view.num_models(); ++i) {
    EXPECT_EQ(owned.payload_bits(i), view.payload_bits(i));
  }
  for (ServerId m = 0; m < view.num_servers(); ++m) {
    EXPECT_EQ(owned.global_server(m), view.global_server(m));
    EXPECT_EQ(owned.capacity(m), view.capacity(m));
    const auto owned_inv = owned.inverse_effective_rates(m);
    const auto view_inv = view.inverse_effective_rates(m);
    const auto owned_assoc = owned.associations(m);
    const auto view_assoc = view.associations(m);
    for (UserId k = 0; k < view.num_users(); ++k) {
      EXPECT_EQ(owned.global_user(k), view.global_user(k));
      EXPECT_EQ(owned_inv[k], view_inv[k]) << "m=" << m << " k=" << k;
      EXPECT_EQ(owned_assoc[k], view_assoc[k]) << "m=" << m << " k=" << k;
      EXPECT_EQ(owned.request_probability(k, 0), view.request_probability(k, 0));
    }
    for (ModelId i = 0; i < view.num_models(); ++i) {
      const auto owned_hits = owned.hit_list(m, i);
      const auto view_hits = view.hit_list(m, i);
      ASSERT_EQ(owned_hits.size(), view_hits.size()) << "m=" << m << " i=" << i;
      for (std::size_t e = 0; e < view_hits.size(); ++e) {
        EXPECT_EQ(owned_hits[e].user, view_hits[e].user);
        EXPECT_EQ(owned_hits[e].mass, view_hits[e].mass);
      }
    }
  }
}

TEST(TileCodec, SolversAreBitIdenticalOnTheDeserializedProblem) {
  const sim::Scenario scenario = tiny_scenario(42);
  const std::vector<ServerId> servers = {0, 1, 3};
  const std::vector<UserId> users = {0, 2, 3, 5, 6, 9, 10};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  TileView parsed = parse_tile_view(serialize_tile_view(sample_header(), view));
  const core::PlacementProblem owned(std::move(parsed.data));

  for (const std::string spec : {"gen", "spec", "gen_naive", "independent"}) {
    core::SolverContext borrowed_context{Rng(9)};
    core::SolverContext owned_context{Rng(9)};
    const auto& registry = core::SolverRegistry::instance();
    const auto borrowed = registry.make(spec)->run(view, borrowed_context);
    const auto deserialized = registry.make(spec)->run(owned, owned_context);
    EXPECT_EQ(borrowed.hit_ratio, deserialized.hit_ratio) << spec;
    EXPECT_EQ(borrowed.gain_evaluations, deserialized.gain_evaluations) << spec;
    EXPECT_EQ(borrowed.iterations, deserialized.iterations) << spec;
    ASSERT_EQ(borrowed.placement.num_servers(), deserialized.placement.num_servers());
    for (ServerId m = 0; m < borrowed.placement.num_servers(); ++m) {
      // Exact placement-order equality, not just set equality.
      EXPECT_EQ(borrowed.placement.models_on(m), deserialized.placement.models_on(m))
          << spec << " server " << m;
    }
  }
}

TEST(TileCodec, LinksOnlyViewSerializesToIdenticalBytes) {
  // The distributed coordinator serializes from a LinksOnly sub-view (no
  // hit lists — the memory win). The bytes must be identical to serializing
  // the full borrowed view: the format ships only links + raw request rows,
  // and the worker rebuilds hit lists itself.
  const sim::Scenario scenario = tiny_scenario(47);
  const std::vector<ServerId> servers = {0, 2};
  const std::vector<UserId> users = {1, 4, 5, 9, 10};
  const core::PlacementProblem full(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const core::PlacementProblem links_only(scenario.topology, scenario.library,
                                          scenario.requests, servers, users,
                                          core::PlacementProblem::LinksOnly{});
  EXPECT_TRUE(full.has_hit_lists());
  EXPECT_FALSE(links_only.has_hit_lists());
  EXPECT_THROW((void)links_only.hit_list(0, 0), std::logic_error);
  EXPECT_EQ(serialize_tile_view(sample_header(), links_only),
            serialize_tile_view(sample_header(), full));
}

// --------------------------------------------- joint compute forward compat

TEST(TileCodec, UnconstrainedProblemStillSerializesVersion1) {
  // The compatibility half of the v2 format: a compute-unconstrained problem
  // must keep producing version-1 bytes — bit-identical to the pre-compute
  // codec — so existing tile files and mixed-version worker fleets keep
  // working unchanged.
  const sim::Scenario scenario = tiny_scenario(48);
  const std::vector<ServerId> servers = {0, 2};
  const std::vector<UserId> users = {1, 3, 5, 8};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  EXPECT_EQ(version_of(bytes), 1u);
  TileView parsed = parse_tile_view(bytes);
  const core::PlacementProblem owned(std::move(parsed.data));
  EXPECT_FALSE(owned.compute_constrained());
}

TEST(TileCodec, ConstrainedViewRoundTripsTheComputeSectionBitwise) {
  const sim::Scenario scenario = tiny_joint_scenario(49);
  const std::vector<ServerId> servers = {0, 1, 3};
  const std::vector<UserId> users = {0, 2, 4, 6, 9, 11};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  ASSERT_TRUE(view.compute_constrained());
  const std::string bytes = serialize_tile_view(sample_header(), view);
  EXPECT_EQ(version_of(bytes), 2u);

  TileView parsed = parse_tile_view(bytes);
  const core::PlacementProblem owned(std::move(parsed.data));
  ASSERT_TRUE(owned.compute_constrained());
  for (ServerId m = 0; m < view.num_servers(); ++m) {
    EXPECT_EQ(owned.compute_capacity(m), view.compute_capacity(m)) << "m=" << m;
  }
  for (UserId k = 0; k < view.num_users(); ++k) {
    // The codec ships one cost per serialized request cell (the p > 0
    // support) — compare exactly those.
    const auto models = view.requests().requested_models(view.request_user(k));
    for (const ModelId i : models) {
      EXPECT_EQ(owned.compute_cost(k, i), view.compute_cost(k, i))
          << "k=" << k << " i=" << i;
    }
  }
  // Solvers take the joint path on both sides and must agree bit for bit.
  for (const std::string spec : {"gen", "spec"}) {
    core::SolverContext borrowed_context{Rng(9)};
    core::SolverContext owned_context{Rng(9)};
    const auto& registry = core::SolverRegistry::instance();
    const auto borrowed = registry.make(spec)->run(view, borrowed_context);
    const auto deserialized = registry.make(spec)->run(owned, owned_context);
    EXPECT_EQ(borrowed.hit_ratio, deserialized.hit_ratio) << spec;
    for (ServerId m = 0; m < borrowed.placement.num_servers(); ++m) {
      EXPECT_EQ(borrowed.placement.models_on(m), deserialized.placement.models_on(m))
          << spec << " server " << m;
    }
  }
}

TEST(TileCodec, ForgedVersion1OnAComputeFileFailsLoudly) {
  // A v1-shaped parse must never silently drop a trailing compute section:
  // forging the version field down to 1 (checksum re-sealed so the envelope
  // passes) has to die on the strict unconsumed-bytes check, not succeed
  // with the capacities quietly discarded.
  const sim::Scenario scenario = tiny_joint_scenario(50);
  const std::vector<ServerId> servers = {0, 2};
  const std::vector<UserId> users = {1, 4, 7, 10};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  std::string bytes = serialize_tile_view(sample_header(), view);
  ASSERT_EQ(version_of(bytes), 2u);
  set_version(bytes, 1);
  bytes = reseal(std::move(bytes));
  try {
    (void)parse_tile_view(bytes);
    FAIL() << "v1 parse of a file carrying a compute section must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unconsumed"), std::string::npos)
        << e.what();
  }
}

TEST(TileCodec, Version2WithoutComputeSectionMatchesVersion1Bitwise) {
  // Forward compat in the other direction: a v2 file whose compute flag is 0
  // must parse to the same problem as the v1 bytes — and because the writer
  // canonicalizes (unconstrained data re-serializes as v1), both parses
  // re-serialize to the identical v1 byte string.
  const sim::Scenario scenario = tiny_scenario(51);
  const std::vector<ServerId> servers = {1, 3};
  const std::vector<UserId> users = {0, 2, 5, 9};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string v1 = serialize_tile_view(sample_header(), view);
  ASSERT_EQ(version_of(v1), 1u);

  std::string v2 = v1;
  set_version(v2, 2);
  v2.insert(v2.size() - 8, std::string(4, '\0'));  // compute flag = 0
  v2 = reseal(std::move(v2));
  TileView from_v1 = parse_tile_view(v1);
  TileView from_v2 = parse_tile_view(v2);
  const core::PlacementProblem owned_v1(std::move(from_v1.data));
  const core::PlacementProblem owned_v2(std::move(from_v2.data));
  EXPECT_FALSE(owned_v2.compute_constrained());
  EXPECT_EQ(owned_v2.total_mass(), owned_v1.total_mass());
  EXPECT_EQ(serialize_tile_view(sample_header(), owned_v1), v1);
  EXPECT_EQ(serialize_tile_view(sample_header(), owned_v2), v1);
}

TEST(TileCodec, ComputeSectionValidationRejectsBadValues) {
  const sim::Scenario scenario = tiny_joint_scenario(52);
  const std::vector<ServerId> servers = {0, 1};
  const std::vector<UserId> users = {2, 3, 6, 8};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  ASSERT_EQ(version_of(bytes), 2u);
  // Section layout from the tail: checksum(8) <- costs(cells*8) <- caps(M*8)
  // <- flag(4).
  const std::size_t cells = request_cells(view);
  const std::size_t caps_at = bytes.size() - 8 - cells * 8 - view.num_servers() * 8;
  const std::size_t flag_at = caps_at - 4;

  std::string bad_flag = bytes;
  set_u32_at(bad_flag, flag_at, 2);
  EXPECT_THROW((void)parse_tile_view(reseal(std::move(bad_flag))),
               std::invalid_argument);

  std::string bad_cap = bytes;
  set_f64_at(bad_cap, caps_at, -1.0);
  try {
    (void)parse_tile_view(reseal(std::move(bad_cap)));
    FAIL() << "negative compute capacity must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("compute capacity"), std::string::npos)
        << e.what();
  }

  // The hardening fuzz extends over the compute section: every truncated
  // prefix and every single-byte corruption of the v2 file fails loudly.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)parse_tile_view(bytes.substr(0, n)), std::invalid_argument)
        << "prefix length " << n;
  }
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    std::string corrupt = bytes;
    corrupt[b] = static_cast<char>(corrupt[b] ^ 0x40);
    EXPECT_THROW((void)parse_tile_view(corrupt), std::invalid_argument)
        << "flipped byte " << b;
  }
}

TEST(TileCodec, TrailingGarbageOnAResultFailsLoudly) {
  // Tile results stay v1; a result file with extra bytes smuggled in front
  // of the checksum (re-sealed, so only the strict tail can catch it) must
  // be rejected — a worker writing a malformed record never feeds the
  // stitch.
  core::SolverOutcome outcome{core::PlacementSolution(2, 3)};
  std::string bytes = serialize_tile_result(TileResult(1, std::move(outcome)));
  bytes.insert(bytes.size() - 8, std::string(4, '\0'));
  EXPECT_THROW((void)parse_tile_result(reseal(std::move(bytes))),
               std::invalid_argument);
}

TEST(TileCodec, ResultRoundTripKeepsPlacementOrderAndScalars) {
  core::PlacementSolution placement(3, 8);
  placement.place(0, 5);
  placement.place(0, 2);  // order matters: 5 before 2
  placement.place(2, 7);
  core::SolverOutcome outcome(std::move(placement));
  outcome.hit_ratio = 0.725;
  outcome.wall_seconds = 1.5e-3;
  outcome.gain_evaluations = 1234;
  outcome.iterations = 99;
  outcome.optimality_bound = 0.81;

  const TileResult original(4, std::move(outcome));
  const TileResult parsed = parse_tile_result(serialize_tile_result(original));
  EXPECT_EQ(parsed.tile_index, 4u);
  EXPECT_EQ(parsed.outcome.placement.num_servers(), 3u);
  EXPECT_EQ(parsed.outcome.placement.num_models(), 8u);
  EXPECT_EQ(parsed.outcome.placement.models_on(0), (std::vector<ModelId>{5, 2}));
  EXPECT_TRUE(parsed.outcome.placement.models_on(1).empty());
  EXPECT_EQ(parsed.outcome.placement.models_on(2), (std::vector<ModelId>{7}));
  EXPECT_EQ(parsed.outcome.hit_ratio, 0.725);
  EXPECT_EQ(parsed.outcome.wall_seconds, 1.5e-3);
  EXPECT_EQ(parsed.outcome.gain_evaluations, 1234u);
  EXPECT_EQ(parsed.outcome.iterations, 99u);
  ASSERT_TRUE(parsed.outcome.optimality_bound.has_value());
  EXPECT_EQ(*parsed.outcome.optimality_bound, 0.81);

  core::SolverOutcome no_bound{core::PlacementSolution(1, 2)};
  const TileResult unbounded =
      parse_tile_result(serialize_tile_result(TileResult(0, std::move(no_bound))));
  EXPECT_FALSE(unbounded.outcome.optimality_bound.has_value());
}

TEST(TileCodec, EveryTruncatedPrefixFailsLoudly) {
  const sim::Scenario scenario = tiny_scenario(43);
  const std::vector<ServerId> servers = {1, 2};
  const std::vector<UserId> users = {0, 4, 6, 8};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)parse_tile_view(bytes.substr(0, n)), std::invalid_argument)
        << "prefix length " << n;
  }

  core::SolverOutcome outcome{core::PlacementSolution(2, 3)};
  const std::string result_bytes =
      serialize_tile_result(TileResult(1, std::move(outcome)));
  for (std::size_t n = 0; n < result_bytes.size(); ++n) {
    EXPECT_THROW((void)parse_tile_result(result_bytes.substr(0, n)),
                 std::invalid_argument)
        << "prefix length " << n;
  }
}

TEST(TileCodec, EverySingleByteCorruptionFailsLoudly) {
  const sim::Scenario scenario = tiny_scenario(44);
  const std::vector<ServerId> servers = {0, 3};
  const std::vector<UserId> users = {2, 5, 7};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  // An FNV-1a step is bijective in the running state, so one flipped byte
  // always changes the final checksum — every flip must be rejected (flips
  // inside the stored checksum itself included).
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    std::string corrupt = bytes;
    corrupt[b] = static_cast<char>(corrupt[b] ^ 0x40);
    EXPECT_THROW((void)parse_tile_view(corrupt), std::invalid_argument)
        << "flipped byte " << b;
  }
}

TEST(TileCodec, RejectsForeignMagicAndReportsDiagnostics) {
  EXPECT_THROW((void)parse_tile_view(""), std::invalid_argument);
  EXPECT_THROW((void)parse_tile_view("not a tile view at all"), std::invalid_argument);
  try {
    (void)parse_tile_view(std::string(64, '\0'));
    FAIL() << "zeroed input must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tile view"), std::string::npos);
  }
  // A valid view is not a valid result and vice versa (magic mismatch).
  const sim::Scenario scenario = tiny_scenario(45);
  const core::PlacementProblem full = scenario.problem();
  const std::string view_bytes = serialize_tile_view(sample_header(), full);
  EXPECT_THROW((void)parse_tile_result(view_bytes), std::invalid_argument);

  EXPECT_THROW((void)read_tile_view("/nonexistent/trimcaching.tile"),
               std::runtime_error);
}

TEST(TileCodec, FileRoundTrip) {
  const sim::Scenario scenario = tiny_scenario(46);
  const std::vector<ServerId> servers = {0, 1};
  const std::vector<UserId> users = {1, 2, 3};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string path = testing::TempDir() + "/trimcaching_codec_test.view";
  write_tile_view(path, sample_header(), view);
  TileView parsed = read_tile_view(path);
  EXPECT_EQ(parsed.header.algo, "gen:lazy=1");
  const core::PlacementProblem owned(std::move(parsed.data));
  EXPECT_EQ(owned.total_mass(), view.total_mass());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trimcaching::io
