// Contracts of the binary tile format (io/tile_codec.h):
//
//   * round-trip fidelity: a borrowed tile sub-view serialized and parsed
//     back as an owning problem reproduces every solver-visible quantity
//     *bitwise* — link arrays, hit lists, request/reachable mass, payload
//     bits — and registry solvers produce bit-identical outcomes on both;
//   * tile results round-trip placement rows in placement order plus all
//     outcome scalars;
//   * hardening: every truncated prefix and every single-byte corruption of
//     a valid file fails with std::invalid_argument (a diagnostic, never a
//     crash) — the coordinator survives any bad worker output.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/solver_registry.h"
#include "src/io/tile_codec.h"
#include "src/sim/scenario.h"

namespace trimcaching::io {
namespace {

using support::Rng;

sim::Scenario tiny_scenario(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 12;
  config.library_size = 10;
  config.special.models_per_family = 5;
  config.requests.models_per_user = 4;
  Rng rng(seed);
  return sim::build_scenario(config, rng);
}

TileViewHeader sample_header() {
  TileViewHeader header;
  header.algo = "gen:lazy=1";
  header.threads = 3;
  header.tile_index = 7;
  header.solver_seed = 0x1234'5678'9abc'def0ull;
  header.time_budget_s = 2.5;
  return header;
}

TEST(TileCodec, ViewRoundTripReproducesTheSubViewBitwise) {
  const sim::Scenario scenario = tiny_scenario(41);
  const std::vector<ServerId> servers = {0, 2, 3};
  const std::vector<UserId> users = {1, 3, 4, 7, 8, 11};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);

  const std::string bytes = serialize_tile_view(sample_header(), view);
  TileView parsed = parse_tile_view(bytes);
  EXPECT_EQ(parsed.header.algo, "gen:lazy=1");
  EXPECT_EQ(parsed.header.threads, 3u);
  EXPECT_EQ(parsed.header.tile_index, 7u);
  EXPECT_EQ(parsed.header.solver_seed, 0x1234'5678'9abc'def0ull);
  EXPECT_DOUBLE_EQ(parsed.header.time_budget_s, 2.5);

  const core::PlacementProblem owned(std::move(parsed.data));
  EXPECT_TRUE(owned.owns_data());
  EXPECT_TRUE(owned.is_view());
  EXPECT_THROW((void)owned.topology(), std::logic_error);

  ASSERT_EQ(owned.num_servers(), view.num_servers());
  ASSERT_EQ(owned.num_users(), view.num_users());
  ASSERT_EQ(owned.num_models(), view.num_models());
  // Bitwise agreement of every quantity a solver consumes: EXPECT_EQ on
  // doubles here is deliberate — the contract is exactness, not closeness.
  EXPECT_EQ(owned.total_mass(), view.total_mass());
  EXPECT_EQ(owned.reachable_mass(), view.reachable_mass());
  EXPECT_EQ(owned.backhaul_bps(), view.backhaul_bps());
  for (ModelId i = 0; i < view.num_models(); ++i) {
    EXPECT_EQ(owned.payload_bits(i), view.payload_bits(i));
  }
  for (ServerId m = 0; m < view.num_servers(); ++m) {
    EXPECT_EQ(owned.global_server(m), view.global_server(m));
    EXPECT_EQ(owned.capacity(m), view.capacity(m));
    const auto owned_inv = owned.inverse_effective_rates(m);
    const auto view_inv = view.inverse_effective_rates(m);
    const auto owned_assoc = owned.associations(m);
    const auto view_assoc = view.associations(m);
    for (UserId k = 0; k < view.num_users(); ++k) {
      EXPECT_EQ(owned.global_user(k), view.global_user(k));
      EXPECT_EQ(owned_inv[k], view_inv[k]) << "m=" << m << " k=" << k;
      EXPECT_EQ(owned_assoc[k], view_assoc[k]) << "m=" << m << " k=" << k;
      EXPECT_EQ(owned.request_probability(k, 0), view.request_probability(k, 0));
    }
    for (ModelId i = 0; i < view.num_models(); ++i) {
      const auto owned_hits = owned.hit_list(m, i);
      const auto view_hits = view.hit_list(m, i);
      ASSERT_EQ(owned_hits.size(), view_hits.size()) << "m=" << m << " i=" << i;
      for (std::size_t e = 0; e < view_hits.size(); ++e) {
        EXPECT_EQ(owned_hits[e].user, view_hits[e].user);
        EXPECT_EQ(owned_hits[e].mass, view_hits[e].mass);
      }
    }
  }
}

TEST(TileCodec, SolversAreBitIdenticalOnTheDeserializedProblem) {
  const sim::Scenario scenario = tiny_scenario(42);
  const std::vector<ServerId> servers = {0, 1, 3};
  const std::vector<UserId> users = {0, 2, 3, 5, 6, 9, 10};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  TileView parsed = parse_tile_view(serialize_tile_view(sample_header(), view));
  const core::PlacementProblem owned(std::move(parsed.data));

  for (const std::string spec : {"gen", "spec", "gen_naive", "independent"}) {
    core::SolverContext borrowed_context{Rng(9)};
    core::SolverContext owned_context{Rng(9)};
    const auto& registry = core::SolverRegistry::instance();
    const auto borrowed = registry.make(spec)->run(view, borrowed_context);
    const auto deserialized = registry.make(spec)->run(owned, owned_context);
    EXPECT_EQ(borrowed.hit_ratio, deserialized.hit_ratio) << spec;
    EXPECT_EQ(borrowed.gain_evaluations, deserialized.gain_evaluations) << spec;
    EXPECT_EQ(borrowed.iterations, deserialized.iterations) << spec;
    ASSERT_EQ(borrowed.placement.num_servers(), deserialized.placement.num_servers());
    for (ServerId m = 0; m < borrowed.placement.num_servers(); ++m) {
      // Exact placement-order equality, not just set equality.
      EXPECT_EQ(borrowed.placement.models_on(m), deserialized.placement.models_on(m))
          << spec << " server " << m;
    }
  }
}

TEST(TileCodec, LinksOnlyViewSerializesToIdenticalBytes) {
  // The distributed coordinator serializes from a LinksOnly sub-view (no
  // hit lists — the memory win). The bytes must be identical to serializing
  // the full borrowed view: the format ships only links + raw request rows,
  // and the worker rebuilds hit lists itself.
  const sim::Scenario scenario = tiny_scenario(47);
  const std::vector<ServerId> servers = {0, 2};
  const std::vector<UserId> users = {1, 4, 5, 9, 10};
  const core::PlacementProblem full(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const core::PlacementProblem links_only(scenario.topology, scenario.library,
                                          scenario.requests, servers, users,
                                          core::PlacementProblem::LinksOnly{});
  EXPECT_TRUE(full.has_hit_lists());
  EXPECT_FALSE(links_only.has_hit_lists());
  EXPECT_THROW((void)links_only.hit_list(0, 0), std::logic_error);
  EXPECT_EQ(serialize_tile_view(sample_header(), links_only),
            serialize_tile_view(sample_header(), full));
}

TEST(TileCodec, ResultRoundTripKeepsPlacementOrderAndScalars) {
  core::PlacementSolution placement(3, 8);
  placement.place(0, 5);
  placement.place(0, 2);  // order matters: 5 before 2
  placement.place(2, 7);
  core::SolverOutcome outcome(std::move(placement));
  outcome.hit_ratio = 0.725;
  outcome.wall_seconds = 1.5e-3;
  outcome.gain_evaluations = 1234;
  outcome.iterations = 99;
  outcome.optimality_bound = 0.81;

  const TileResult original(4, std::move(outcome));
  const TileResult parsed = parse_tile_result(serialize_tile_result(original));
  EXPECT_EQ(parsed.tile_index, 4u);
  EXPECT_EQ(parsed.outcome.placement.num_servers(), 3u);
  EXPECT_EQ(parsed.outcome.placement.num_models(), 8u);
  EXPECT_EQ(parsed.outcome.placement.models_on(0), (std::vector<ModelId>{5, 2}));
  EXPECT_TRUE(parsed.outcome.placement.models_on(1).empty());
  EXPECT_EQ(parsed.outcome.placement.models_on(2), (std::vector<ModelId>{7}));
  EXPECT_EQ(parsed.outcome.hit_ratio, 0.725);
  EXPECT_EQ(parsed.outcome.wall_seconds, 1.5e-3);
  EXPECT_EQ(parsed.outcome.gain_evaluations, 1234u);
  EXPECT_EQ(parsed.outcome.iterations, 99u);
  ASSERT_TRUE(parsed.outcome.optimality_bound.has_value());
  EXPECT_EQ(*parsed.outcome.optimality_bound, 0.81);

  core::SolverOutcome no_bound{core::PlacementSolution(1, 2)};
  const TileResult unbounded =
      parse_tile_result(serialize_tile_result(TileResult(0, std::move(no_bound))));
  EXPECT_FALSE(unbounded.outcome.optimality_bound.has_value());
}

TEST(TileCodec, EveryTruncatedPrefixFailsLoudly) {
  const sim::Scenario scenario = tiny_scenario(43);
  const std::vector<ServerId> servers = {1, 2};
  const std::vector<UserId> users = {0, 4, 6, 8};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)parse_tile_view(bytes.substr(0, n)), std::invalid_argument)
        << "prefix length " << n;
  }

  core::SolverOutcome outcome{core::PlacementSolution(2, 3)};
  const std::string result_bytes =
      serialize_tile_result(TileResult(1, std::move(outcome)));
  for (std::size_t n = 0; n < result_bytes.size(); ++n) {
    EXPECT_THROW((void)parse_tile_result(result_bytes.substr(0, n)),
                 std::invalid_argument)
        << "prefix length " << n;
  }
}

TEST(TileCodec, EverySingleByteCorruptionFailsLoudly) {
  const sim::Scenario scenario = tiny_scenario(44);
  const std::vector<ServerId> servers = {0, 3};
  const std::vector<UserId> users = {2, 5, 7};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string bytes = serialize_tile_view(sample_header(), view);
  // An FNV-1a step is bijective in the running state, so one flipped byte
  // always changes the final checksum — every flip must be rejected (flips
  // inside the stored checksum itself included).
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    std::string corrupt = bytes;
    corrupt[b] = static_cast<char>(corrupt[b] ^ 0x40);
    EXPECT_THROW((void)parse_tile_view(corrupt), std::invalid_argument)
        << "flipped byte " << b;
  }
}

TEST(TileCodec, RejectsForeignMagicAndReportsDiagnostics) {
  EXPECT_THROW((void)parse_tile_view(""), std::invalid_argument);
  EXPECT_THROW((void)parse_tile_view("not a tile view at all"), std::invalid_argument);
  try {
    (void)parse_tile_view(std::string(64, '\0'));
    FAIL() << "zeroed input must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tile view"), std::string::npos);
  }
  // A valid view is not a valid result and vice versa (magic mismatch).
  const sim::Scenario scenario = tiny_scenario(45);
  const core::PlacementProblem full = scenario.problem();
  const std::string view_bytes = serialize_tile_view(sample_header(), full);
  EXPECT_THROW((void)parse_tile_result(view_bytes), std::invalid_argument);

  EXPECT_THROW((void)read_tile_view("/nonexistent/trimcaching.tile"),
               std::runtime_error);
}

TEST(TileCodec, FileRoundTrip) {
  const sim::Scenario scenario = tiny_scenario(46);
  const std::vector<ServerId> servers = {0, 1};
  const std::vector<UserId> users = {1, 2, 3};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  const std::string path = testing::TempDir() + "/trimcaching_codec_test.view";
  write_tile_view(path, sample_header(), view);
  TileView parsed = read_tile_view(path);
  EXPECT_EQ(parsed.header.algo, "gen:lazy=1");
  const core::PlacementProblem owned(std::move(parsed.data));
  EXPECT_EQ(owned.total_mass(), view.total_mass());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trimcaching::io
