#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/support/units.h"
#include "src/wireless/channel.h"
#include "src/wireless/geometry.h"
#include "src/wireless/spatial_grid.h"
#include "src/wireless/topology.h"

namespace trimcaching::wireless {
namespace {

using support::Rng;

// ------------------------------------------------------------------- Geometry

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, AreaContainsAndClamp) {
  Area area{100.0};
  EXPECT_TRUE(area.contains({0, 0}));
  EXPECT_TRUE(area.contains({100, 100}));
  EXPECT_FALSE(area.contains({-1, 50}));
  const Point p = area.clamp({-5, 120});
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 100.0);
}

TEST(Geometry, UniformPointsInsideArea) {
  Area area{500.0};
  Rng rng(1);
  const auto pts = uniform_points(area, 200, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const auto& p : pts) EXPECT_TRUE(area.contains(p));
}

// -------------------------------------------------------------------- Channel

TEST(Channel, PathGainDecreasesWithDistance) {
  ChannelParams params;
  EXPECT_GT(path_gain(params, 10.0), path_gain(params, 20.0));
  // alpha0 = 4: doubling distance costs 16x.
  EXPECT_NEAR(path_gain(params, 10.0) / path_gain(params, 20.0), 16.0, 1e-9);
}

TEST(Channel, PathGainClampedNearField) {
  ChannelParams params;
  EXPECT_DOUBLE_EQ(path_gain(params, 0.0), path_gain(params, params.min_distance_m));
}

TEST(Channel, ShannonRateMonotone) {
  ChannelParams params;
  const double r_near = shannon_rate(params, 1e8, 10.0, 50.0);
  const double r_far = shannon_rate(params, 1e8, 10.0, 200.0);
  EXPECT_GT(r_near, r_far);
  EXPECT_GT(r_far, 0.0);
  // More power helps.
  EXPECT_GT(shannon_rate(params, 1e8, 20.0, 50.0), r_near);
}

TEST(Channel, PaperScaleRateIsGbps) {
  // §VII-A numbers: ~160 MHz and ~8 W per user at 100 m should give Gbps-range.
  ChannelParams params;
  const double rate = shannon_rate(params, 160e6, 8.0, 100.0);
  EXPECT_GT(rate, 1e9);
  EXPECT_LT(rate, 1e10);
}

TEST(Channel, FadingGainScalesSnr) {
  ChannelParams params;
  const double base = shannon_rate(params, 1e8, 10.0, 100.0, 1.0);
  EXPECT_GT(base, shannon_rate(params, 1e8, 10.0, 100.0, 0.1));
  EXPECT_LT(base, shannon_rate(params, 1e8, 10.0, 100.0, 10.0));
  EXPECT_DOUBLE_EQ(shannon_rate(params, 1e8, 10.0, 100.0, 0.0), 0.0);
}

TEST(Channel, RayleighGainIsExponentialMeanOne) {
  Rng rng(9);
  double sum = 0;
  const int n = 50000;
  for (int t = 0; t < n; ++t) sum += sample_rayleigh_power_gain(rng);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Channel, ValidateRejectsBadParams) {
  ChannelParams params;
  params.alpha0 = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = ChannelParams{};
  params.noise_psd_w_hz = -1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

// ------------------------------------------------------------------- Topology

class TopologyTest : public ::testing::Test {
 protected:
  /// 2 servers on a 1000 m line; u0 near s0, u1 near s1, u2 covered by none,
  /// u3 covered by both (midpoint, 200 m from each server).
  NetworkTopology make() {
    RadioConfig radio;
    radio.coverage_radius_m = 275.0;
    std::vector<Point> servers = {{300, 500}, {700, 500}};
    std::vector<Point> users = {{310, 500}, {690, 500}, {500, 0}, {500, 500}};
    std::vector<support::Bytes> caps(2, support::gigabytes(1.0));
    return NetworkTopology(Area{1000.0}, radio, servers, users, caps);
  }
};

TEST_F(TopologyTest, Association) {
  const auto topo = make();
  EXPECT_EQ(topo.servers_covering(0), std::vector<ServerId>({0}));
  EXPECT_EQ(topo.servers_covering(1), std::vector<ServerId>({1}));
  EXPECT_TRUE(topo.servers_covering(2).empty());
  EXPECT_EQ(topo.servers_covering(3), std::vector<ServerId>({0, 1}));
  EXPECT_EQ(topo.users_of(0), std::vector<UserId>({0, 3}));
  EXPECT_TRUE(topo.is_associated(0, 0));
  EXPECT_FALSE(topo.is_associated(1, 0));
}

TEST_F(TopologyTest, PerUserSharesSplitByActiveUsers) {
  const auto topo = make();
  // Server 0 has 2 associated users, p_A = 0.5: each gets B/(0.5*2) = B.
  EXPECT_DOUBLE_EQ(topo.per_user_bandwidth_hz(0), topo.radio().total_bandwidth_hz);
  EXPECT_DOUBLE_EQ(topo.per_user_power_w(0), topo.radio().total_power_w);
}

TEST_F(TopologyTest, RatesOnlyForAssociatedPairs) {
  const auto topo = make();
  EXPECT_GT(topo.avg_rate_bps(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(topo.avg_rate_bps(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(topo.avg_rate_bps(0, 2), 0.0);
  // Nearer user gets a higher rate from the same server.
  EXPECT_GT(topo.avg_rate_bps(0, 0), topo.avg_rate_bps(0, 3));
}

TEST_F(TopologyTest, DirectDeliveryMatchesEq4) {
  const auto topo = make();
  const support::Bytes payload = support::megabytes(100);
  const double expected = support::bits(payload) / topo.avg_rate_bps(0, 0);
  EXPECT_NEAR(topo.delivery_seconds(0, 0, payload), expected, 1e-12);
}

TEST_F(TopologyTest, RelayedDeliveryMatchesEq5) {
  const auto topo = make();
  const support::Bytes payload = support::megabytes(100);
  // Server 1 delivering to user 0 must relay through server 0.
  const double expected = support::bits(payload) / topo.radio().backhaul_bps +
                          support::bits(payload) / topo.avg_rate_bps(0, 0);
  EXPECT_NEAR(topo.delivery_seconds(1, 0, payload), expected, 1e-12);
  // Relay is slower than direct.
  EXPECT_GT(topo.delivery_seconds(1, 0, payload), topo.delivery_seconds(0, 0, payload));
}

TEST_F(TopologyTest, UncoveredUserUnreachable) {
  const auto topo = make();
  EXPECT_TRUE(std::isinf(topo.delivery_seconds(0, 2, support::megabytes(1))));
  EXPECT_TRUE(std::isinf(topo.delivery_seconds(1, 2, support::megabytes(1))));
}

TEST_F(TopologyTest, DualCoveredUserPrefersBestRelay) {
  const auto topo = make();
  const support::Bytes payload = support::megabytes(50);
  // User 3 is covered by both servers; direct from either is possible.
  EXPECT_LT(topo.delivery_seconds(0, 3, payload), 10.0);
  EXPECT_LT(topo.delivery_seconds(1, 3, payload), 10.0);
}

TEST_F(TopologyTest, UpdateUserPositionsRebuilds) {
  auto topo = make();
  // Move user 2 next to server 0.
  std::vector<Point> users = {{310, 500}, {690, 500}, {320, 500}, {500, 500}};
  topo.update_user_positions(users);
  EXPECT_EQ(topo.servers_covering(2), std::vector<ServerId>({0}));
  EXPECT_GT(topo.avg_rate_bps(0, 2), 0.0);
  // Server 0 now has 3 associated users -> smaller per-user share.
  EXPECT_DOUBLE_EQ(topo.per_user_bandwidth_hz(0),
                   topo.radio().total_bandwidth_hz / (0.5 * 3));
}

TEST_F(TopologyTest, UpdateUserCountChangeRejected) {
  auto topo = make();
  EXPECT_THROW(topo.update_user_positions({{0, 0}}), std::invalid_argument);
}

TEST_F(TopologyTest, FadedRateReducesWithDeepFade) {
  const auto topo = make();
  EXPECT_LT(topo.faded_rate_bps(0, 0, 0.01), topo.avg_rate_bps(0, 0));
  EXPECT_DOUBLE_EQ(topo.faded_rate_bps(1, 0, 1.0), 0.0);  // not associated
}

TEST(Topology, ValidationErrors) {
  RadioConfig radio;
  std::vector<Point> servers = {{0, 0}};
  std::vector<Point> users = {{1, 1}};
  EXPECT_THROW(NetworkTopology(Area{100.0}, radio, {}, users, {}),
               std::invalid_argument);
  EXPECT_THROW(NetworkTopology(Area{100.0}, radio, servers, users, {}),
               std::invalid_argument);
  radio.active_probability = 0.0;
  EXPECT_THROW(NetworkTopology(Area{100.0}, radio, servers, users,
                               {support::gigabytes(1)}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- SpatialGrid

TEST(SpatialGrid, DiscQueryCandidatesCoverBruteForce) {
  Area area{1000.0};
  Rng rng(21);
  const auto points = uniform_points(area, 300, rng);
  const SpatialGrid grid(area, 150.0, points);
  for (std::size_t q = 0; q < 40; ++q) {
    const Point center{rng.uniform(0.0, area.side_m), rng.uniform(0.0, area.side_m)};
    const double radius = rng.uniform(10.0, 400.0);
    std::vector<std::size_t> via_grid;
    grid.for_candidates_in_disc(center, radius, [&](std::size_t id) {
      if (distance(points[id], center) <= radius) via_grid.push_back(id);
    });
    std::sort(via_grid.begin(), via_grid.end());
    std::vector<std::size_t> brute;
    for (std::size_t id = 0; id < points.size(); ++id) {
      if (distance(points[id], center) <= radius) brute.push_back(id);
    }
    EXPECT_EQ(via_grid, brute);
  }
}

TEST(Topology, GridCoverageMatchesBruteForceAllPairs) {
  // The grid-indexed rebuild must reproduce the all-pairs coverage scan
  // exactly: same covering sets, association, and CSR rates.
  Area area{2000.0};
  RadioConfig radio;
  Rng rng(22);
  const auto topology =
      sample_topology(area, radio, 60, 250, support::gigabytes(1.0), rng);
  for (UserId k = 0; k < topology.num_users(); ++k) {
    std::vector<ServerId> brute;
    for (ServerId m = 0; m < topology.num_servers(); ++m) {
      if (distance(topology.server_position(m), topology.user_position(k)) <=
          radio.coverage_radius_m) {
        brute.push_back(m);
      }
    }
    EXPECT_EQ(topology.servers_covering(k), brute) << "user " << k;
    for (ServerId m = 0; m < topology.num_servers(); ++m) {
      const bool covered = std::binary_search(brute.begin(), brute.end(), m);
      EXPECT_EQ(topology.is_associated(m, k), covered);
      EXPECT_EQ(topology.avg_rate_bps(m, k) > 0, covered);
    }
  }
  // CSR views stay consistent with the per-user covering lists.
  const auto& offsets = topology.covering_offsets();
  for (UserId k = 0; k < topology.num_users(); ++k) {
    const auto& cover = topology.servers_covering(k);
    ASSERT_EQ(offsets[k + 1] - offsets[k], cover.size());
    for (std::size_t e = 0; e < cover.size(); ++e) {
      EXPECT_EQ(topology.covering_flat()[offsets[k] + e], cover[e]);
      EXPECT_DOUBLE_EQ(topology.link_avg_rate_bps()[offsets[k] + e],
                       topology.avg_rate_bps(cover[e], k));
    }
  }
}

TEST(Topology, SampleTopologyShapes) {
  RadioConfig radio;
  Rng rng(4);
  const auto topo =
      sample_topology(Area{1000.0}, radio, 10, 20, support::gigabytes(1), rng);
  EXPECT_EQ(topo.num_servers(), 10u);
  EXPECT_EQ(topo.num_users(), 20u);
  EXPECT_EQ(topo.capacity(3), support::gigabytes(1));
}

}  // namespace
}  // namespace trimcaching::wireless
