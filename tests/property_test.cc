// Randomized invariant harness over every registered solver.
//
// For ~50 seeded scenarios — special- and general-case libraries, solved
// both untiled and through ScenarioTiler (with and without the repair pass)
// — every solver's outcome is cross-checked against the problem contracts
// it must uphold regardless of algorithm:
//
//   * capacity feasibility (Eq. 3 / Eq. 6b): the dedup-aware storage g_m of
//     every server's cached set fits its capacity;
//   * placement validity: only library models, within dimensions, and no
//     duplicate entries per server;
//   * objective honesty: the solver-reported hit ratio equals an
//     independent Eq. 2 recompute — both through core::expected_hit_ratio
//     and through the Evaluator's flat-plan arithmetic.
//
// The exact solver is exponential, so it runs on dedicated tiny instances
// where its optimality over the greedy family is asserted as well.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/core/objective.h"
#include "src/core/solver_registry.h"
#include "src/core/storage.h"
#include "src/sim/evaluator.h"
#include "src/sim/scenario.h"
#include "src/sim/tiler.h"

namespace trimcaching {
namespace {

using support::Rng;

/// Every registered solver spec the harness drives, except "exact"
/// (exponential; covered by its own tiny-instance loop below). Includes a
/// composition so refiner plumbing is exercised too.
std::vector<std::string> harness_specs() {
  std::vector<std::string> specs;
  for (const auto& info : core::SolverRegistry::instance().list()) {
    if (info.name == "exact") continue;
    specs.push_back(info.name);
  }
  specs.push_back("gen+repair");
  return specs;
}

sim::ScenarioConfig small_config(bool general) {
  sim::ScenarioConfig config;
  config.num_servers = general ? 4 : 5;
  config.num_users = general ? 20 : 24;
  config.library_size = general ? 20 : 24;
  config.special.models_per_family = 10;
  config.requests.models_per_user = general ? 8 : 10;
  if (general) config.library_kind = sim::LibraryKind::kGeneralCase;
  return config;
}

void check_invariants(const sim::Scenario& scenario,
                      const core::PlacementProblem& problem,
                      const sim::Evaluator& evaluator,
                      const core::PlacementSolution& placement,
                      double reported_hit, const std::string& label) {
  ASSERT_EQ(placement.num_servers(), problem.num_servers()) << label;
  ASSERT_EQ(placement.num_models(), problem.num_models()) << label;

  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    const std::vector<ModelId>& models = placement.models_on(m);
    // Only library models, no duplicate entries per server.
    const std::set<ModelId> unique(models.begin(), models.end());
    EXPECT_EQ(unique.size(), models.size()) << label << ": duplicates on server " << m;
    for (const ModelId i : models) {
      EXPECT_LT(i, problem.num_models()) << label << ": bad model on server " << m;
    }
    // Capacity feasibility under block dedup (Eq. 3 / Eq. 6b).
    EXPECT_LE(core::dedup_storage(scenario.library, models), problem.capacity(m))
        << label << ": server " << m << " over capacity";
  }

  // The solver-reported objective must match an independent Eq. 2 recompute
  // — via the coverage machinery and via the Evaluator's flat plan.
  const double recomputed = core::expected_hit_ratio(problem, placement);
  EXPECT_NEAR(reported_hit, recomputed, 1e-9) << label;
  EXPECT_NEAR(evaluator.expected_hit_ratio(placement), recomputed, 1e-9) << label;
}

TEST(SolverInvariants, EveryRegisteredSolverOnRandomScenariosUntiled) {
  const auto specs = harness_specs();
  // 10 seeds x {special, general} = 20 scenarios.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool general : {false, true}) {
      Rng rng(1000 + seed);
      const sim::Scenario scenario = sim::build_scenario(small_config(general), rng);
      const core::PlacementProblem problem = scenario.problem();
      const sim::Evaluator evaluator(scenario.topology, scenario.library,
                                     scenario.requests);
      for (const std::string& spec : specs) {
        const std::string label = spec + (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed);
        core::SolverContext context{Rng(seed)};
        const auto outcome =
            core::SolverRegistry::instance().make(spec)->run(problem, context);
        check_invariants(scenario, problem, evaluator, outcome.placement,
                         outcome.hit_ratio, label);
      }
    }
  }
}

TEST(SolverInvariants, EveryRegisteredSolverOnRandomScenariosTiled) {
  const auto specs = harness_specs();
  // 10 seeds x {special, general} = 20 scenarios, each solved through a 2x2
  // tiling; the repair pass is toggled on for odd seeds so both the raw
  // stitch and the repaired placement flow through the checks. Wide
  // deadlines keep relays eligible — the halo-overlap regime.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool general : {false, true}) {
      sim::ScenarioConfig config = small_config(general);
      config.num_servers = 12;
      config.num_users = 60;
      config.area_side_m = 1400.0;
      config.requests.deadline_min_s = 2.0;
      config.requests.deadline_max_s = 6.0;
      Rng rng(2000 + seed);
      const sim::Scenario scenario = sim::build_scenario(config, rng);
      const core::PlacementProblem problem = scenario.problem();
      const sim::Evaluator evaluator(scenario.topology, scenario.library,
                                     scenario.requests);
      sim::TilerConfig tiler_config;
      tiler_config.tiles_x = 2;
      tiler_config.tiles_y = 2;
      tiler_config.repair = (seed % 2) == 1;
      const sim::ScenarioTiler tiler(scenario, tiler_config);
      for (const std::string& spec : specs) {
        const std::string label = "tiled " + spec +
                                  (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed) +
                                  (tiler_config.repair ? " repair" : "");
        const auto tiled = tiler.solve(spec, seed);
        check_invariants(scenario, problem, evaluator, tiled.placement,
                         tiled.hit_ratio, label);
      }
    }
  }
}

TEST(SolverInvariants, CrossProcessTilingBitIdenticalForEveryRegisteredSolver) {
  // The distributed-tiles contract (ROADMAP / sim/tiler.h): for every
  // registered solver, solving the tiles in worker *processes* must
  // reproduce the in-process tiled result bit for bit — same placements in
  // the same placement order, same Eq. 2 objective, same work counters —
  // across a threads × workers grid. Seeds × {special, general} scenarios.
  const char* worker_bin = std::getenv("TRIMCACHING_WORKER_BIN");
  if (!worker_bin || !*worker_bin) {
    GTEST_SKIP() << "TRIMCACHING_WORKER_BIN not set (run under ctest)";
  }
  const auto specs = harness_specs();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const bool general : {false, true}) {
      sim::ScenarioConfig config = small_config(general);
      config.num_servers = 12;
      config.num_users = 60;
      config.area_side_m = 1400.0;
      config.requests.deadline_min_s = 2.0;
      config.requests.deadline_max_s = 6.0;
      Rng rng(4000 + seed);
      const sim::Scenario scenario = sim::build_scenario(config, rng);
      const core::PlacementProblem problem = scenario.problem();
      sim::TilerConfig tiler_config;
      tiler_config.tiles_x = 2;
      tiler_config.tiles_y = 2;
      tiler_config.repair = (seed % 2) == 1;
      const sim::ScenarioTiler in_process(scenario, tiler_config);
      for (const std::string& spec : specs) {
        const std::string label = "x-process " + spec +
                                  (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed);
        const auto serial = in_process.solve(spec, seed, 1);
        const auto threaded = in_process.solve(spec, seed, 4);
        for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
          sim::TilerConfig distributed_config = tiler_config;
          distributed_config.workers = workers;
          const sim::ScenarioTiler distributed(scenario, distributed_config);
          const auto remote = distributed.solve(spec, seed);
          for (const auto* result : {&threaded, &remote}) {
            ASSERT_EQ(serial.placement.total_placements(),
                      result->placement.total_placements())
                << label << " workers=" << workers;
            for (ServerId m = 0; m < serial.placement.num_servers(); ++m) {
              ASSERT_EQ(serial.placement.models_on(m), result->placement.models_on(m))
                  << label << " workers=" << workers << " server " << m;
            }
            EXPECT_EQ(serial.hit_ratio, result->hit_ratio) << label;
            EXPECT_EQ(serial.gain_evaluations, result->gain_evaluations) << label;
            EXPECT_EQ(serial.iterations, result->iterations) << label;
          }
          // Eq. 2 honesty of the cross-process result against an
          // independent recompute on the full problem.
          EXPECT_NEAR(core::expected_hit_ratio(problem, remote.placement),
                      remote.hit_ratio, 1e-9)
              << label;
        }
      }
    }
  }
}

// ----------------------------------------------------- joint caching + compute

/// A compute budget small enough to bind hard on the harness scenarios:
/// expected served load is ~0.1 units per user against per-server capacities
/// of this size, so the joint assignment must actually ration inferences.
constexpr double kBindingComputeCapacity = 0.08;

/// Joint-objective invariants every solver must uphold on a
/// compute-constrained problem: the canonical assignment never overcommits a
/// server (feasibility by construction), and the reported objective is the
/// normalized hit mass of that assignment.
void check_joint_invariants(const core::PlacementProblem& problem,
                            const core::PlacementSolution& placement,
                            double reported_hit, const std::string& label) {
  const core::JointEvaluation joint = core::evaluate_joint(problem, placement);
  ASSERT_EQ(joint.server_loads.size(), problem.num_servers()) << label;
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(joint.server_loads[m], problem.compute_capacity(m))
        << label << ": server " << m << " over compute capacity";
  }
  const double mass = problem.total_mass();
  EXPECT_NEAR(reported_hit, mass > 0.0 ? joint.hit_mass / mass : 0.0, 1e-9)
      << label;
}

TEST(SolverInvariants, JointComputeUnlimitedDefaultReducesToTheStorageUnion) {
  // The compatibility half of the joint contract: a default scenario is not
  // compute-constrained, and evaluating the *joint* objective on it (every
  // capacity +inf) reproduces the storage-only Eq. 2 union — the compute
  // dimension is invisible until a finite capacity is configured.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const bool general : {false, true}) {
      Rng rng(1000 + seed);
      const sim::Scenario scenario = sim::build_scenario(small_config(general), rng);
      const core::PlacementProblem problem = scenario.problem();
      ASSERT_FALSE(problem.compute_constrained());
      for (const std::string spec : {"gen", "spec", "independent"}) {
        const std::string label = "joint-default " + spec +
                                  (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed);
        core::SolverContext context{Rng(seed)};
        const auto outcome =
            core::SolverRegistry::instance().make(spec)->run(problem, context);
        const auto joint = core::evaluate_joint(problem, outcome.placement);
        EXPECT_NEAR(joint.hit_mass / problem.total_mass(), outcome.hit_ratio, 1e-12)
            << label;
        for (const double load : joint.server_loads) EXPECT_GE(load, 0.0) << label;
      }
    }
  }
}

TEST(SolverInvariants, EveryRegisteredSolverFeasibleAndHonestUnderComputeConstraint) {
  // The constrained half: same scenario grid with a binding per-server
  // compute capacity. Every registered solver must stay feasible in *both*
  // dimensions, report the joint objective honestly, and never claim more
  // than the storage-only union of its own placement (served-with-compute is
  // a subset of covered). The constraint must actually bind somewhere in the
  // grid, or this test would be vacuous.
  const auto specs = harness_specs();
  bool constraint_bound = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const bool general : {false, true}) {
      sim::ScenarioConfig config = small_config(general);
      config.compute_capacity = kBindingComputeCapacity;
      Rng rng(1000 + seed);
      const sim::Scenario scenario = sim::build_scenario(config, rng);
      const core::PlacementProblem problem = scenario.problem();
      ASSERT_TRUE(problem.compute_constrained());
      // Twin scenario from the identical RNG stream, compute left unlimited:
      // the generator draws no randomness for the capacity knob, so only the
      // capacities differ — the union recompute target.
      Rng twin_rng(1000 + seed);
      const sim::Scenario twin =
          sim::build_scenario(small_config(general), twin_rng);
      const core::PlacementProblem union_problem = twin.problem();
      const sim::Evaluator evaluator(scenario.topology, scenario.library,
                                     scenario.requests);
      for (const std::string& spec : specs) {
        const std::string label = "joint " + spec +
                                  (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed);
        core::SolverContext context{Rng(seed)};
        const auto outcome =
            core::SolverRegistry::instance().make(spec)->run(problem, context);
        check_invariants(scenario, problem, evaluator, outcome.placement,
                         outcome.hit_ratio, label);
        check_joint_invariants(problem, outcome.placement, outcome.hit_ratio,
                               label);
        const double union_hit =
            core::expected_hit_ratio(union_problem, outcome.placement);
        EXPECT_LE(outcome.hit_ratio, union_hit + 1e-9) << label;
        if (outcome.hit_ratio < union_hit - 1e-9) constraint_bound = true;
      }
    }
  }
  EXPECT_TRUE(constraint_bound)
      << "compute capacity " << kBindingComputeCapacity
      << " never bound on any scenario — the joint leg tested nothing";
}

TEST(SolverInvariants, ZeroComputeCapacityServesNothing) {
  // Degenerate but legal: a finite capacity of 0 admits no inference at all,
  // so every solver's joint objective is exactly 0 and no server carries any
  // load — the sharpest edge of the feasibility contract.
  for (const bool general : {false, true}) {
    sim::ScenarioConfig config = small_config(general);
    config.compute_capacity = 0.0;
    Rng rng(1001);
    const sim::Scenario scenario = sim::build_scenario(config, rng);
    const core::PlacementProblem problem = scenario.problem();
    for (const std::string spec : {"gen", "spec", "independent", "gen+repair"}) {
      const std::string label = "joint-zero " + spec + (general ? " general" : "");
      core::SolverContext context{Rng(1)};
      const auto outcome =
          core::SolverRegistry::instance().make(spec)->run(problem, context);
      EXPECT_EQ(outcome.hit_ratio, 0.0) << label;
      const auto joint = core::evaluate_joint(problem, outcome.placement);
      EXPECT_EQ(joint.hit_mass, 0.0) << label;
      for (const double load : joint.server_loads) EXPECT_EQ(load, 0.0) << label;
    }
  }
}

TEST(SolverInvariants, JointTiledAndCrossProcessAgreeUnderComputeConstraint) {
  // The distributed contract extends to the joint objective: with a binding
  // compute capacity, in-process serial, in-process threaded, and
  // worker-process tiling must all reproduce the same placements and the
  // same joint hit ratio bit for bit (the tile codec's v2 compute section is
  // what carries the capacities/costs across the process boundary).
  const char* worker_bin = std::getenv("TRIMCACHING_WORKER_BIN");
  if (!worker_bin || !*worker_bin) {
    GTEST_SKIP() << "TRIMCACHING_WORKER_BIN not set (run under ctest)";
  }
  const auto specs = harness_specs();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const bool general : {false, true}) {
      sim::ScenarioConfig config = small_config(general);
      config.num_servers = 12;
      config.num_users = 60;
      config.area_side_m = 1400.0;
      config.requests.deadline_min_s = 2.0;
      config.requests.deadline_max_s = 6.0;
      config.compute_capacity = kBindingComputeCapacity;
      Rng rng(4000 + seed);
      const sim::Scenario scenario = sim::build_scenario(config, rng);
      const core::PlacementProblem problem = scenario.problem();
      ASSERT_TRUE(problem.compute_constrained());
      sim::TilerConfig tiler_config;
      tiler_config.tiles_x = 2;
      tiler_config.tiles_y = 2;
      tiler_config.repair = (seed % 2) == 1;
      const sim::ScenarioTiler in_process(scenario, tiler_config);
      sim::TilerConfig distributed_config = tiler_config;
      distributed_config.workers = 2;
      const sim::ScenarioTiler distributed(scenario, distributed_config);
      for (const std::string& spec : specs) {
        const std::string label = "joint x-process " + spec +
                                  (general ? " general" : " special") +
                                  " seed=" + std::to_string(seed);
        const auto serial = in_process.solve(spec, seed, 1);
        const auto threaded = in_process.solve(spec, seed, 4);
        const auto remote = distributed.solve(spec, seed);
        for (const auto* result : {&threaded, &remote}) {
          ASSERT_EQ(serial.placement.total_placements(),
                    result->placement.total_placements())
              << label;
          for (ServerId m = 0; m < serial.placement.num_servers(); ++m) {
            ASSERT_EQ(serial.placement.models_on(m), result->placement.models_on(m))
                << label << " server " << m;
          }
          EXPECT_EQ(serial.hit_ratio, result->hit_ratio) << label;
          EXPECT_EQ(serial.gain_evaluations, result->gain_evaluations) << label;
          EXPECT_EQ(serial.iterations, result->iterations) << label;
        }
        EXPECT_NEAR(core::expected_hit_ratio(problem, remote.placement),
                    remote.hit_ratio, 1e-9)
            << label;
        check_joint_invariants(problem, remote.placement, remote.hit_ratio, label);
      }
    }
  }
}

TEST(SolverInvariants, ExactSolverOnTinyScenariosIsFeasibleAndOptimal) {
  // 10 dedicated tiny scenarios: few enough decision variables for B&B, and
  // the proven optimum must dominate every greedy-family result.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::ScenarioConfig config;
    config.num_servers = 2;
    config.num_users = 6;
    config.library_size = 6;
    config.special.models_per_family = 4;
    config.requests.models_per_user = 3;
    Rng rng(3000 + seed);
    const sim::Scenario scenario = sim::build_scenario(config, rng);
    const core::PlacementProblem problem = scenario.problem();
    const sim::Evaluator evaluator(scenario.topology, scenario.library,
                                   scenario.requests);
    const std::string label = "exact seed=" + std::to_string(seed);

    core::SolverContext exact_context{Rng(seed)};
    const auto exact = core::SolverRegistry::instance().make("exact")->run(
        problem, exact_context);
    check_invariants(scenario, problem, evaluator, exact.placement,
                     exact.hit_ratio, label);
    ASSERT_TRUE(exact.optimality_bound.has_value()) << label;

    for (const std::string spec : {"gen", "spec", "independent"}) {
      core::SolverContext context{Rng(seed)};
      const auto outcome =
          core::SolverRegistry::instance().make(spec)->run(problem, context);
      EXPECT_GE(exact.hit_ratio, outcome.hit_ratio - 1e-9)
          << label << " vs " << spec;
    }
  }
}

}  // namespace
}  // namespace trimcaching
