#include <gtest/gtest.h>

#include "src/core/exact_solver.h"
#include "src/core/independent_caching.h"
#include "src/core/trimcaching_gen.h"
#include "src/core/trimcaching_spec.h"
#include "tests/test_util.h"

namespace trimcaching::core {
namespace {

class ExactOnRandomWorlds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  testutil::World make_world() const {
    // Small enough for exhaustive search: M=2, I=8.
    return testutil::random_world(GetParam(), 2, 6, 8, 10, 25.0, 400.0);
  }
};

TEST_P(ExactOnRandomWorlds, BranchAndBoundMatchesExhaustive) {
  const auto world = make_world();
  const auto problem = world.problem();
  ExactConfig bb;
  ExactConfig exhaustive;
  exhaustive.branch_and_bound = false;
  const auto a = exact_optimal(problem, bb);
  const auto b = exact_optimal(problem, exhaustive);
  EXPECT_NEAR(a.hit_ratio, b.hit_ratio, 1e-12);
  // Pruning must not increase the node count.
  EXPECT_LE(a.nodes_visited, b.nodes_visited);
}

TEST_P(ExactOnRandomWorlds, OptimalDominatesHeuristics) {
  const auto world = make_world();
  const auto problem = world.problem();
  const auto optimal = exact_optimal(problem);
  const auto gen = trimcaching_gen(problem);
  const auto indep = independent_caching(problem);
  SpecConfig spec_config;
  spec_config.solver.mode = DpMode::kWeightQuantized;
  spec_config.solver.weight_states = 25;
  const auto spec = trimcaching_spec(problem, spec_config);
  EXPECT_GE(optimal.hit_ratio + 1e-9, gen.hit_ratio);
  EXPECT_GE(optimal.hit_ratio + 1e-9, indep.hit_ratio);
  EXPECT_GE(optimal.hit_ratio + 1e-9, spec.hit_ratio);
}

TEST_P(ExactOnRandomWorlds, SpecMeetsTheoremTwoBound) {
  // Theorem 2: U(X̂) >= (1-ε)/2 U(X*) — with exact sub-problems, >= 1/2.
  const auto world = make_world();
  const auto problem = world.problem();
  const auto optimal = exact_optimal(problem);
  SpecConfig config;
  config.solver.mode = DpMode::kWeightQuantized;
  config.solver.weight_states = 25;
  const auto spec = trimcaching_spec(problem, config);
  EXPECT_GE(spec.hit_ratio, 0.5 * optimal.hit_ratio - 1e-9);
}

TEST_P(ExactOnRandomWorlds, SolutionIsFeasible) {
  const auto world = make_world();
  const auto problem = world.problem();
  const auto result = exact_optimal(problem);
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_LE(problem.library().dedup_size(result.placement.models_on(m)),
              problem.capacity(m));
  }
  EXPECT_NEAR(result.hit_ratio, expected_hit_ratio(problem, result.placement), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactOnRandomWorlds,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(ExactSolver, RefusesOversizedInstances) {
  const auto world = testutil::random_world(1, 4, 12, 20, 24, 50.0);
  const auto problem = world.problem();
  ExactConfig config;
  config.max_decision_vars = 10;
  EXPECT_THROW((void)exact_optimal(problem, config), std::invalid_argument);
}

TEST(ExactSolver, EmptyEligibilityGivesZero) {
  // Impossible deadlines: nothing can ever be served.
  support::Rng rng(5);
  wireless::RadioConfig radio;
  auto topology = wireless::sample_topology(wireless::Area{400.0}, radio, 2, 4,
                                            support::megabytes(50), rng);
  auto library = testutil::random_library(rng, 5, 6);
  workload::RequestConfig req;
  req.deadline_min_s = 1e-4;
  req.deadline_max_s = 2e-4;
  req.inference_min_s = 1e-3;  // inference alone exceeds the deadline
  req.inference_max_s = 2e-3;
  auto requests =
      workload::RequestModel::generate(4, library.num_models(), req, rng);
  const testutil::World world{std::move(topology), std::move(library),
                              std::move(requests)};
  const auto problem = world.problem();
  const auto result = exact_optimal(problem);
  EXPECT_DOUBLE_EQ(result.hit_ratio, 0.0);
  EXPECT_EQ(result.placement.total_placements(), 0u);
}

}  // namespace
}  // namespace trimcaching::core
