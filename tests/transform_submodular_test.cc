#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/core/storage.h"
#include "src/core/submodular.h"
#include "src/core/transform.h"
#include "tests/test_util.h"

namespace trimcaching::core {
namespace {

using support::DynamicBitset;
using support::Rng;

// ------------------------------------------------------- property machinery

TEST(SubmodularChecker, DetectsModularFunction) {
  // f(S) = |S| is both submodular and supermodular; monotone.
  Rng rng(1);
  const SetFunction cardinality = [](const DynamicBitset& s) {
    return static_cast<double>(s.count());
  };
  EXPECT_TRUE(check_submodular(cardinality, 10, 200, rng).holds());
  EXPECT_TRUE(check_supermodular(cardinality, 10, 200, rng).holds());
  EXPECT_TRUE(check_monotone(cardinality, 10, 200, rng).holds());
}

TEST(SubmodularChecker, DetectsViolations) {
  // f(S) = |S|^2 is supermodular but NOT submodular.
  Rng rng(2);
  const SetFunction square = [](const DynamicBitset& s) {
    const double c = static_cast<double>(s.count());
    return c * c;
  };
  EXPECT_FALSE(check_submodular(square, 10, 500, rng).holds());
  EXPECT_TRUE(check_supermodular(square, 10, 500, rng).holds());
  // sqrt(|S|) is submodular but not supermodular.
  const SetFunction root = [](const DynamicBitset& s) {
    return std::sqrt(static_cast<double>(s.count()));
  };
  EXPECT_TRUE(check_submodular(root, 10, 500, rng).holds());
  EXPECT_FALSE(check_supermodular(root, 10, 500, rng).holds());
}

TEST(SubmodularChecker, EmptyGroundSetRejected) {
  Rng rng(3);
  const SetFunction f = [](const DynamicBitset&) { return 0.0; };
  EXPECT_THROW((void)check_submodular(f, 0, 10, rng), std::invalid_argument);
}

// ---------------------------------------- Proposition 1 on concrete instances

class Proposition1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Proposition1, ObjectiveIsMonotoneSubmodular) {
  const auto world = testutil::random_world(GetParam(), 3, 8, 8, 10, 40.0);
  const auto problem = world.problem();
  const std::size_t universe = problem.num_servers() * problem.num_models();
  const SetFunction hit_ratio = [&problem](const DynamicBitset& s) {
    PlacementSolution placement(problem.num_servers(), problem.num_models());
    s.for_each([&](std::size_t cell) {
      placement.place(static_cast<ServerId>(cell / problem.num_models()),
                      static_cast<ModelId>(cell % problem.num_models()));
    });
    return expected_hit_ratio(problem, placement);
  };
  Rng rng(GetParam() * 31 + 1);
  EXPECT_TRUE(check_submodular(hit_ratio, universe, 150, rng).holds());
  Rng rng2(GetParam() * 31 + 2);
  EXPECT_TRUE(check_monotone(hit_ratio, universe, 150, rng2).holds());
}

TEST_P(Proposition1, StorageConstraintIsSubmodular) {
  Rng lib_rng(GetParam());
  const auto lib = testutil::random_library(lib_rng, 10, 12);
  const SetFunction storage = [&lib](const DynamicBitset& s) {
    std::vector<ModelId> models;
    s.for_each([&](std::size_t i) { models.push_back(static_cast<ModelId>(i)); });
    return static_cast<double>(lib.dedup_size(models));
  };
  Rng rng(GetParam() * 77 + 5);
  EXPECT_TRUE(check_submodular(storage, lib.num_models(), 300, rng).holds());
  Rng rng2(GetParam() * 77 + 6);
  EXPECT_TRUE(check_monotone(storage, lib.num_models(), 300, rng2).holds());
}

// Proposition 2's transformed objective U(Y) is supermodular in the block
// variables of a single server (the product form of x_{m,i}).
TEST_P(Proposition1, TransformedObjectiveIsSupermodularPerServer) {
  const auto world = testutil::random_world(GetParam() + 50, 1, 8, 8, 10, 40.0);
  const auto problem = world.problem();
  const auto& lib = problem.library();
  const SetFunction u_of_blocks = [&problem, &lib](const DynamicBitset& blocks) {
    BlockPlacement y;
    y.per_server.push_back(blocks);
    return expected_hit_ratio_blocks(problem, y);
  };
  Rng rng(GetParam() * 13 + 7);
  EXPECT_TRUE(check_supermodular(u_of_blocks, lib.num_blocks(), 200, rng).holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1, ::testing::Range<std::uint64_t>(0, 8));

// -------------------------------------------------------------- transformation

class TransformRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformRoundTrip, BlockStorageEqualsDedupStorage) {
  const auto world = testutil::random_world(GetParam(), 3, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  Rng rng(GetParam() + 9);
  PlacementSolution x(problem.num_servers(), problem.num_models());
  for (int step = 0; step < 10; ++step) {
    x.place(static_cast<ServerId>(rng.index(problem.num_servers())),
            static_cast<ModelId>(rng.index(problem.num_models())));
  }
  const BlockPlacement y = block_placement_from(problem.library(), x);
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    EXPECT_EQ(block_storage(problem.library(), y.per_server[m]),
              problem.library().dedup_size(x.models_on(m)));
  }
}

TEST_P(TransformRoundTrip, RoundTripNeverLosesModels) {
  const auto world = testutil::random_world(GetParam() + 30, 3, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  Rng rng(GetParam() + 17);
  PlacementSolution x(problem.num_servers(), problem.num_models());
  for (int step = 0; step < 8; ++step) {
    x.place(static_cast<ServerId>(rng.index(problem.num_servers())),
            static_cast<ModelId>(rng.index(problem.num_models())));
  }
  const BlockPlacement y = block_placement_from(problem.library(), x);
  const PlacementSolution x2 = models_available_under(problem.library(), y);
  // Every placed model is still available (other models may become available
  // for free if their blocks happen to be covered — that's the P1.2 view).
  for (ServerId m = 0; m < problem.num_servers(); ++m) {
    for (const ModelId i : x.models_on(m)) EXPECT_TRUE(x2.placed(m, i));
  }
  EXPECT_GE(expected_hit_ratio_blocks(problem, y),
            expected_hit_ratio(problem, x) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Transform, EmptyBlockPlacementRejected) {
  const auto world = testutil::random_world(3, 2, 4, 6, 8, 30.0);
  BlockPlacement y;
  EXPECT_THROW((void)models_available_under(world.library, y), std::invalid_argument);
  support::DynamicBitset wrong(world.library.num_blocks() + 1);
  EXPECT_THROW((void)block_storage(world.library, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching::core
