#include <gtest/gtest.h>

#include "src/core/trimcaching_gen.h"
#include "src/sim/evaluator.h"
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/replacement.h"
#include "src/sim/scenario.h"

namespace trimcaching::sim {
namespace {

using support::Rng;

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 8;
  config.library_size = 12;
  config.special.models_per_family = 10;
  config.capacity_bytes = support::megabytes(400);
  return config;
}

// ------------------------------------------------------------------- Scenario

TEST(Scenario, BuildsConsistentDimensions) {
  Rng rng(1);
  const auto config = small_config();
  const Scenario scenario = build_scenario(config, rng);
  EXPECT_EQ(scenario.topology.num_servers(), 4u);
  EXPECT_EQ(scenario.topology.num_users(), 8u);
  EXPECT_EQ(scenario.library.num_models(), 12u);
  EXPECT_EQ(scenario.requests.num_users(), 8u);
  EXPECT_EQ(scenario.requests.num_models(), 12u);
  const auto problem = scenario.problem();
  EXPECT_EQ(problem.num_servers(), 4u);
}

TEST(Scenario, LibraryKinds) {
  for (const auto kind :
       {LibraryKind::kSpecialCase, LibraryKind::kGeneralCase, LibraryKind::kLora}) {
    Rng rng(2);
    ScenarioConfig config = small_config();
    config.library_kind = kind;
    config.library_size = 10;
    const auto lib = build_library(config, rng);
    EXPECT_EQ(lib.num_models(), 10u) << static_cast<int>(kind);
  }
}

TEST(Scenario, FullLibraryWhenSizeZero) {
  Rng rng(3);
  ScenarioConfig config = small_config();
  config.library_size = 0;
  config.special.models_per_family = 7;
  const auto lib = build_library(config, rng);
  EXPECT_EQ(lib.num_models(), 21u);
}

TEST(Scenario, ValidationErrors) {
  Rng rng(4);
  ScenarioConfig config = small_config();
  config.num_servers = 0;
  EXPECT_THROW((void)build_scenario(config, rng), std::invalid_argument);
  config = small_config();
  config.capacity_bytes = 0;
  EXPECT_THROW((void)build_scenario(config, rng), std::invalid_argument);
}

TEST(Scenario, DeterministicForSameSeed) {
  Rng rng_a(42), rng_b(42);
  const auto a = build_scenario(small_config(), rng_a);
  const auto b = build_scenario(small_config(), rng_b);
  EXPECT_DOUBLE_EQ(a.topology.user_position(0).x, b.topology.user_position(0).x);
  EXPECT_EQ(a.library.num_blocks(), b.library.num_blocks());
  EXPECT_DOUBLE_EQ(a.requests.probability(0, 0), b.requests.probability(0, 0));
}

// ------------------------------------------------------------------ Evaluator

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : rng_(11), scenario_(build_scenario(small_config(), rng_)) {}
  Rng rng_;
  Scenario scenario_;
};

TEST_F(EvaluatorTest, ExpectedMatchesObjective) {
  const auto problem = scenario_.problem();
  const auto result = core::trimcaching_gen(problem);
  const Evaluator evaluator(scenario_.topology, scenario_.library, scenario_.requests);
  // The evaluator recomputes Eq. 2 from the topology; it must agree with the
  // problem's precomputed objective on the same snapshot.
  EXPECT_NEAR(evaluator.expected_hit_ratio(result.placement), result.hit_ratio, 1e-12);
}

TEST_F(EvaluatorTest, EmptyPlacementZero) {
  const Evaluator evaluator(scenario_.topology, scenario_.library, scenario_.requests);
  core::PlacementSolution empty(scenario_.topology.num_servers(),
                                scenario_.library.num_models());
  EXPECT_DOUBLE_EQ(evaluator.expected_hit_ratio(empty), 0.0);
  const auto fading = evaluator.fading_hit_ratio(empty, 10, rng_);
  EXPECT_DOUBLE_EQ(fading.mean, 0.0);
}

TEST_F(EvaluatorTest, FadingCloseToExpectedOnAverage) {
  const auto problem = scenario_.problem();
  const auto result = core::trimcaching_gen(problem);
  const Evaluator evaluator(scenario_.topology, scenario_.library, scenario_.requests);
  const auto fading = evaluator.fading_hit_ratio(result.placement, 400, rng_);
  EXPECT_EQ(fading.count, 400u);
  // Rayleigh fading perturbs rates both ways; the mean fading ratio stays in
  // a broad band around the average-rate ratio.
  EXPECT_NEAR(fading.mean, evaluator.expected_hit_ratio(result.placement), 0.25);
  EXPECT_GE(fading.min, 0.0);
  EXPECT_LE(fading.max, 1.0 + 1e-12);
}

TEST_F(EvaluatorTest, FadingDeterministicGivenSeed) {
  const auto problem = scenario_.problem();
  const auto result = core::trimcaching_gen(problem);
  const Evaluator evaluator(scenario_.topology, scenario_.library, scenario_.requests);
  Rng a(5), b(5);
  EXPECT_DOUBLE_EQ(evaluator.fading_hit_ratio(result.placement, 50, a).mean,
                   evaluator.fading_hit_ratio(result.placement, 50, b).mean);
}

TEST_F(EvaluatorTest, InvalidArgs) {
  const Evaluator evaluator(scenario_.topology, scenario_.library, scenario_.requests);
  core::PlacementSolution empty(scenario_.topology.num_servers(),
                                scenario_.library.num_models());
  EXPECT_THROW((void)evaluator.fading_hit_ratio(empty, 0, rng_),
               std::invalid_argument);
}

// ----------------------------------------------------------------- MonteCarlo

TEST(MonteCarlo, ComparisonRunsAllSolvers) {
  ScenarioConfig config = small_config();
  MonteCarloConfig mc;
  mc.topologies = 3;
  mc.fading_realizations = 30;
  const auto stats = run_comparison(config, {"spec", "gen", "independent"}, mc);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.fading_hit_ratio.count, 3u);
    EXPECT_GE(s.fading_hit_ratio.mean, 0.0);
    EXPECT_LE(s.fading_hit_ratio.mean, 1.0 + 1e-12);
    EXPECT_GE(s.runtime_seconds.mean, 0.0);
  }
  // Dedup-aware algorithms dominate the baseline on sharing-heavy libraries.
  EXPECT_GE(stats[0].expected_hit_ratio.mean, stats[2].expected_hit_ratio.mean - 0.02);
  EXPECT_GE(stats[1].expected_hit_ratio.mean, stats[2].expected_hit_ratio.mean - 0.02);
  // The stats echo the spec and the registry's display title.
  EXPECT_EQ(stats[0].spec, "spec");
  EXPECT_EQ(stats[0].title, "TrimCaching Spec");
  EXPECT_EQ(stats[1].title, "TrimCaching Gen");
  EXPECT_EQ(stats[2].title, "Independent Caching");
  // The greedy solvers report their marginal-gain work.
  EXPECT_GT(stats[1].gain_evaluations.mean, 0.0);
}

TEST(MonteCarlo, InvalidConfigRejected) {
  MonteCarloConfig mc;
  mc.topologies = 0;
  EXPECT_THROW((void)run_comparison(small_config(), {"gen"}, mc),
               std::invalid_argument);
  EXPECT_THROW((void)run_comparison(small_config(), {}, MonteCarloConfig{}),
               std::invalid_argument);
  // Unknown solver specs fail up front, before any topology is sampled.
  EXPECT_THROW((void)run_comparison(small_config(), {"wat"}, MonteCarloConfig{}),
               std::invalid_argument);
}

// ------------------------------------------------------------ Mobility studies

TEST(MobilityStudy, TraceShapeAndBounds) {
  Rng rng(21);
  MobilityStudyConfig config;
  config.num_slots = 60;        // 5 minutes
  config.eval_every_slots = 12; // one point per minute
  const auto trace = run_mobility_study(small_config(), config, rng);
  ASSERT_EQ(trace.size(), 6u);  // t=0 plus 5 samples
  EXPECT_DOUBLE_EQ(trace.front().minutes, 0.0);
  EXPECT_DOUBLE_EQ(trace.back().minutes, 5.0);
  for (const auto& pt : trace) {
    EXPECT_GE(pt.spec_hit_ratio, 0.0);
    EXPECT_LE(pt.spec_hit_ratio, 1.0 + 1e-12);
    EXPECT_GE(pt.gen_hit_ratio, 0.0);
    EXPECT_LE(pt.gen_hit_ratio, 1.0 + 1e-12);
  }
}

TEST(ReplacementStudy, TriggersOnDegradation) {
  Rng rng(22);
  MobilityStudyConfig config;
  config.num_slots = 240;  // 20 minutes
  config.eval_every_slots = 12;
  // An aggressive threshold forces at least the machinery to run; whether a
  // replacement triggers depends on the topology draw.
  ReplacementPolicy policy;
  policy.degradation_threshold = 0.01;
  const auto result = run_replacement_study(small_config(), config, policy, rng);
  EXPECT_EQ(result.trace.size(), 21u);
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_GE(result.trace[t].minutes, result.trace[t - 1].minutes);
  }
  // Replacements counted consistently with the trace flags.
  std::size_t flagged = 0;
  for (const auto& pt : result.trace) flagged += pt.replaced ? 1 : 0;
  EXPECT_EQ(flagged, result.replacements);
}

TEST(ReplacementStudy, InvalidThresholdRejected) {
  Rng rng(23);
  ReplacementPolicy policy;
  policy.degradation_threshold = 0.0;
  EXPECT_THROW(
      (void)run_replacement_study(small_config(), MobilityStudyConfig{}, policy, rng),
      std::invalid_argument);
}

TEST(MobilityStudy, InvalidConfigRejected) {
  Rng rng(24);
  MobilityStudyConfig config;
  config.eval_every_slots = 0;
  EXPECT_THROW((void)run_mobility_study(small_config(), config, rng),
               std::invalid_argument);
}

// ----------------------------------------------------------------- Experiment

TEST(Experiment, DefaultBudgetRespondsToEnv) {
  // Without the env var the quick budget applies.
  unsetenv("TRIMCACHING_FULL");
  const auto quick = default_mc_config();
  EXPECT_LT(quick.topologies, 100u);
  setenv("TRIMCACHING_FULL", "1", 1);
  const auto full = default_mc_config();
  EXPECT_EQ(full.topologies, 100u);
  EXPECT_EQ(full.fading_realizations, 1000u);
  unsetenv("TRIMCACHING_FULL");
}

}  // namespace
}  // namespace trimcaching::sim
