// Contracts of the failure-aware serving path (sim/fault_model.h +
// serve/engine.cc fault threading):
//
//   * zero-fault equivalence — running with no schedule, with a nullptr
//     schedule, and with an inert schedule are byte-for-byte identical
//     across every ServeMetrics field and derived statistic;
//   * thread bit-identity under an outage storm — threads=1 and threads=8
//     agree exactly, including every new failure counter and the
//     time-sliced hit-ratio windows;
//   * the six terminal states (hits, late, unserved, cloud, failed-over,
//     aborted) partition the request count exactly under faults;
//   * recovery semantics — reactive caches come back cold and measure a
//     re-warm transient, static caches are re-pushed from the placement;
//   * schedule semantics — half-open outage intervals, counter-based
//     determinism, prone-set stability;
//   * availability scoring — all-up sampling reproduces the nominal Eq. 2
//     value, outages only lower it, and K-replica redundancy is rewarded.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/trimcaching_gen.h"
#include "src/serve/engine.h"
#include "src/serve/metrics.h"
#include "src/sim/fault_model.h"
#include "src/sim/scenario.h"
#include "tests/test_util.h"

namespace trimcaching {
namespace {

using support::Rng;

/// Every field of two serving results must match exactly — the comparison
/// the zero-fault and thread-identity contracts are stated in.
void expect_identical(const serve::ServeResult& a, const serve::ServeResult& b) {
  const auto& ta = a.totals;
  const auto& tb = b.totals;
  EXPECT_EQ(ta.requests, tb.requests);
  EXPECT_EQ(ta.deadline_hits, tb.deadline_hits);
  EXPECT_EQ(ta.late, tb.late);
  EXPECT_EQ(ta.unserved, tb.unserved);
  EXPECT_EQ(ta.compute_rejects, tb.compute_rejects);
  EXPECT_EQ(ta.cloud_served, tb.cloud_served);
  EXPECT_EQ(ta.edge_hits, tb.edge_hits);
  EXPECT_EQ(ta.relays, tb.relays);
  EXPECT_EQ(ta.cloud_fetches, tb.cloud_fetches);
  EXPECT_EQ(ta.merged_fetches, tb.merged_fetches);
  EXPECT_EQ(ta.cloud_bytes, tb.cloud_bytes);
  EXPECT_EQ(ta.cache_evictions, tb.cache_evictions);
  EXPECT_EQ(ta.stale_events, tb.stale_events);
  EXPECT_EQ(ta.failovers, tb.failovers);
  EXPECT_EQ(ta.failed_over, tb.failed_over);
  EXPECT_EQ(ta.aborted, tb.aborted);
  EXPECT_EQ(ta.outages, tb.outages);
  EXPECT_EQ(ta.recoveries, tb.recoveries);
  EXPECT_EQ(ta.rewarms, tb.rewarms);
  EXPECT_EQ(ta.rewarm_time_s, tb.rewarm_time_s);
  EXPECT_EQ(ta.download_sum_s, tb.download_sum_s);
  EXPECT_EQ(ta.latency.count(), tb.latency.count());
  EXPECT_EQ(ta.latency.quantile(0.5), tb.latency.quantile(0.5));
  EXPECT_EQ(ta.latency.quantile(0.99), tb.latency.quantile(0.99));
  EXPECT_EQ(ta.busy_time_s, tb.busy_time_s);
  EXPECT_EQ(ta.flow_time_s, tb.flow_time_s);
  EXPECT_EQ(ta.queue_depth, tb.queue_depth);
  EXPECT_EQ(ta.window_requests, tb.window_requests);
  EXPECT_EQ(ta.window_hits, tb.window_hits);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.mean_download_s, b.mean_download_s);
  EXPECT_EQ(a.p50_download_s, b.p50_download_s);
  EXPECT_EQ(a.p95_download_s, b.p95_download_s);
  EXPECT_EQ(a.p99_download_s, b.p99_download_s);
  EXPECT_EQ(a.mean_concurrency, b.mean_concurrency);
  EXPECT_EQ(a.served_rps, b.served_rps);
  EXPECT_EQ(a.mean_rewarm_s, b.mean_rewarm_s);
}

class FaultModelTest : public ::testing::Test {
 protected:
  FaultModelTest() {
    sim::ScenarioConfig config;
    config.num_servers = 8;
    config.num_users = 40;
    config.library_size = 24;
    config.special.models_per_family = 8;
    config.capacity_bytes = support::megabytes(500);
    Rng rng(42);
    scenario_ = std::make_unique<sim::Scenario>(sim::build_scenario(config, rng));
    problem_ = std::make_unique<core::PlacementProblem>(scenario_->problem());
    placement_ = std::make_unique<core::PlacementSolution>(
        core::trimcaching_gen(*problem_).placement);
  }

  [[nodiscard]] serve::ServeResult run(const serve::ServeConfig& config,
                                       std::uint64_t seed) const {
    return serve::simulate_serving(scenario_->topology, scenario_->library,
                                   scenario_->requests, *placement_, config,
                                   Rng(seed));
  }

  /// A storm schedule that exercises all three fault families: ~half the
  /// fleet flapping, degraded downlinks, and backhaul brownouts.
  [[nodiscard]] sim::FaultSchedule storm(double duration_s) const {
    sim::FaultScheduleConfig config;
    config.duration_s = duration_s;
    config.fault_fraction = 0.5;
    config.mtbf_s = 120.0;
    config.mttr_s = 40.0;
    config.degraded_snr_factor = 0.5;
    config.degrade_mtbf_s = 150.0;
    config.degrade_mttr_s = 50.0;
    config.brownout_factor = 0.5;
    config.brownout_mtbf_s = 200.0;
    config.brownout_mttr_s = 60.0;
    return sim::FaultSchedule(scenario_->topology.num_servers(), config, Rng(17));
  }

  std::unique_ptr<sim::Scenario> scenario_;
  std::unique_ptr<core::PlacementProblem> problem_;
  std::unique_ptr<core::PlacementSolution> placement_;
};

// -------------------------------------------------------- zero-fault identity

TEST_F(FaultModelTest, InertScheduleIsByteIdenticalToNoSchedule) {
  // An all-healthy schedule must replay the fault-free engine byte for byte
  // — the contract that lets the fault path ship inside the one engine
  // without perturbing every existing baseline.
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 400.0;
  config.queue_depth_samples = 32;
  config.hit_series_windows = 8;
  for (const char* policy : {"static", "lru"}) {
    config.policy = policy;
    config.faults = nullptr;
    const auto without = run(config, 11);

    sim::FaultScheduleConfig inert_config;
    inert_config.duration_s = config.duration_s;  // all fault families off
    const sim::FaultSchedule inert(scenario_->topology.num_servers(), inert_config,
                                   Rng(17));
    ASSERT_TRUE(inert.inert());
    config.faults = &inert;
    const auto with_inert = run(config, 11);
    expect_identical(without, with_inert);
    EXPECT_EQ(with_inert.totals.outages, 0u);
    EXPECT_EQ(with_inert.totals.failovers, 0u);
  }
}

TEST_F(FaultModelTest, WindowSeriesPartitionsRequestsWithoutFaults) {
  // The time-sliced hit-ratio series is fault-independent plumbing: the
  // window sums must reproduce the run totals exactly.
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 400.0;
  config.hit_series_windows = 10;
  const auto result = run(config, 11);
  ASSERT_EQ(result.totals.window_requests.size(), 10u);
  ASSERT_EQ(result.totals.window_hits.size(), 10u);
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  for (std::size_t w = 0; w < 10; ++w) {
    requests += result.totals.window_requests[w];
    hits += result.totals.window_hits[w];
    EXPECT_LE(result.totals.window_hits[w], result.totals.window_requests[w]);
  }
  EXPECT_EQ(requests, result.totals.requests);
  EXPECT_EQ(hits, result.totals.deadline_hits);
}

// --------------------------------------------------- storm replay contracts

TEST_F(FaultModelTest, StormReplayIsBitIdenticalAcrossThreadCounts) {
  const sim::FaultSchedule schedule = storm(400.0);
  ASSERT_FALSE(schedule.inert());
  ASSERT_GT(schedule.total_outages(), 0u);
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 400.0;
  config.policy = "lru";
  config.faults = &schedule;
  config.queue_depth_samples = 32;
  config.hit_series_windows = 8;
  config.threads = 1;
  const auto serial = run(config, 11);
  config.threads = 8;
  const auto threaded = run(config, 11);
  EXPECT_GT(serial.totals.outages, 0u);
  expect_identical(serial, threaded);
}

TEST_F(FaultModelTest, TerminalStatesPartitionRequestsUnderStorm) {
  const sim::FaultSchedule schedule = storm(400.0);
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.3;
  config.duration_s = 400.0;
  config.faults = &schedule;
  for (const char* policy : {"static", "lru", "ewma:tau_s=60"}) {
    config.policy = policy;
    const auto result = run(config, 11);
    const auto& t = result.totals;
    EXPECT_EQ(t.deadline_hits + t.late + t.unserved + t.cloud_served +
                  t.failed_over + t.aborted,
              t.requests)
        << policy;
    EXPECT_EQ(t.terminal(), t.requests) << policy;
    // The storm must actually engage the failover machinery somewhere.
    EXPECT_GT(t.failovers + t.failed_over + t.aborted, 0u) << policy;
    EXPECT_GT(t.outages, 0u) << policy;
    EXPECT_LE(t.recoveries, t.outages) << policy;
  }
}

TEST_F(FaultModelTest, ReactiveCacheRewarmsAfterRecoveryStaticIsRepushed) {
  const sim::FaultSchedule schedule = storm(600.0);
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.5;
  config.duration_s = 600.0;
  config.faults = &schedule;
  config.rewarm_fraction = 0.5;

  config.policy = "lru";
  const auto reactive = run(config, 11);
  EXPECT_GT(reactive.totals.recoveries, 0u);
  EXPECT_GT(reactive.totals.rewarms, 0u)
      << "a recovered lru cache never climbed back to the re-warm threshold";
  EXPECT_GT(reactive.mean_rewarm_s, 0.0);
  EXPECT_LE(reactive.totals.rewarms, reactive.totals.recoveries);

  // Static caches are re-pushed from the placement at recovery (operator
  // restore) — there is no admit-on-miss transient to measure.
  config.policy = "static";
  const auto pushed = run(config, 11);
  EXPECT_GT(pushed.totals.recoveries, 0u);
  EXPECT_EQ(pushed.totals.rewarms, 0u);
  EXPECT_EQ(pushed.mean_rewarm_s, 0.0);
}

TEST_F(FaultModelTest, EngineRejectsMismatchedScheduleSize) {
  sim::FaultScheduleConfig fault_config;
  fault_config.duration_s = 400.0;
  const sim::FaultSchedule wrong_size(scenario_->topology.num_servers() + 3,
                                      fault_config, Rng(17));
  serve::ServeConfig config;
  config.faults = &wrong_size;
  EXPECT_THROW((void)run(config, 11), std::invalid_argument);
}

// ------------------------------------------------------- schedule semantics

TEST_F(FaultModelTest, OutageIntervalsAreHalfOpenAndDeterministic) {
  const sim::FaultSchedule a = storm(400.0);
  const sim::FaultSchedule b = storm(400.0);
  ASSERT_EQ(a.num_servers(), b.num_servers());
  ASSERT_GT(a.faulty_servers(), 0u);
  bool saw_outage = false;
  for (ServerId m = 0; m < a.num_servers(); ++m) {
    const auto& intervals = a.outages(m);
    ASSERT_EQ(intervals.size(), b.outages(m).size()) << "server " << m;
    double previous_end = 0.0;
    for (std::size_t k = 0; k < intervals.size(); ++k) {
      saw_outage = true;
      EXPECT_EQ(intervals[k].begin_s, b.outages(m)[k].begin_s);
      EXPECT_EQ(intervals[k].end_s, b.outages(m)[k].end_s);
      // Ascending, disjoint, half-open: down at begin, up again at end.
      EXPECT_GE(intervals[k].begin_s, previous_end);
      EXPECT_GT(intervals[k].end_s, intervals[k].begin_s);
      previous_end = intervals[k].end_s;
      EXPECT_FALSE(a.is_up(m, intervals[k].begin_s));
      EXPECT_TRUE(a.is_up(m, intervals[k].end_s));
      EXPECT_TRUE(a.is_up(m, intervals[k].begin_s - 1e-9));
      const double mid = 0.5 * (intervals[k].begin_s + intervals[k].end_s);
      EXPECT_FALSE(a.is_up(m, mid));
      EXPECT_EQ(a.up_mask(mid)[m], 0);
    }
    // Degradation factors are per-server constants inside (0, 1].
    EXPECT_GT(a.snr_factor(m, 0.0), 0.0);
    EXPECT_LE(a.snr_factor(m, 0.0), 1.0);
  }
  EXPECT_TRUE(saw_outage);
  // Brownouts modulate the backhaul factor between the configured value and 1.
  ASSERT_FALSE(a.brownouts().empty());
  const auto& brown = a.brownouts().front();
  EXPECT_EQ(a.backhaul_factor(0.5 * (brown.begin_s + brown.end_s)), 0.5);
  EXPECT_EQ(a.backhaul_factor(brown.end_s), 1.0);
}

TEST(FaultScheduleConfig, ValidateRejectsBadValues) {
  const auto expect_throws = [](auto mutate) {
    sim::FaultScheduleConfig config;
    config.fault_fraction = 0.5;
    config.mtbf_s = 100.0;
    config.mttr_s = 10.0;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_throws([](auto& c) { c.duration_s = 0.0; });
  expect_throws([](auto& c) { c.duration_s = std::nan(""); });
  expect_throws([](auto& c) { c.fault_fraction = -0.1; });
  expect_throws([](auto& c) { c.fault_fraction = 1.5; });
  expect_throws([](auto& c) { c.fault_fraction = std::nan(""); });
  expect_throws([](auto& c) { c.mtbf_s = 0.0; });   // enabled family needs it
  expect_throws([](auto& c) { c.mttr_s = -5.0; });
  expect_throws([](auto& c) { c.degraded_snr_factor = 0.0; });
  expect_throws([](auto& c) { c.degraded_snr_factor = 0.5; });  // missing mtbf
  expect_throws([](auto& c) { c.brownout_factor = 1.5; });
  expect_throws([](auto& c) {
    c.brownout_factor = 0.5;  // missing brownout mtbf/mttr
  });
  sim::FaultScheduleConfig fine;
  fine.fault_fraction = 0.5;
  fine.mtbf_s = 100.0;
  fine.mttr_s = 10.0;
  EXPECT_NO_THROW(fine.validate());
}

// ------------------------------------------------------ availability scoring

TEST_F(FaultModelTest, AvailabilityOneReproducesTheNominalScore) {
  const auto score =
      sim::score_under_outages(scenario_->topology, scenario_->library,
                               scenario_->requests, *placement_, 1.0, 4, Rng(5));
  EXPECT_DOUBLE_EQ(score.expected_hit_ratio, score.nominal_hit_ratio);
  EXPECT_DOUBLE_EQ(score.worst_hit_ratio, score.nominal_hit_ratio);
  EXPECT_GT(score.nominal_hit_ratio, 0.0);
}

TEST_F(FaultModelTest, OutagesOnlyLowerTheScoreAndRedundancyHelps) {
  const auto score =
      sim::score_under_outages(scenario_->topology, scenario_->library,
                               scenario_->requests, *placement_, 0.6, 16, Rng(5));
  EXPECT_LE(score.expected_hit_ratio, score.nominal_hit_ratio + 1e-12);
  EXPECT_LE(score.worst_hit_ratio, score.expected_hit_ratio + 1e-12);
  EXPECT_LT(score.expected_hit_ratio, score.nominal_hit_ratio);

  // Replicating every model on every server is the redundancy ceiling: under
  // the same outage masks it must score at least as well as the solver
  // placement (K surviving replicas keep the hit mass).
  core::PlacementSolution everywhere(placement_->num_servers(),
                                     placement_->num_models());
  for (ServerId m = 0; m < placement_->num_servers(); ++m) {
    for (ModelId i = 0; i < placement_->num_models(); ++i) {
      everywhere.place(m, i);
    }
  }
  const auto replicated =
      sim::score_under_outages(scenario_->topology, scenario_->library,
                               scenario_->requests, everywhere, 0.6, 16, Rng(5));
  EXPECT_GE(replicated.expected_hit_ratio, score.expected_hit_ratio);

  // The caller's topology is never mutated by the masking.
  EXPECT_TRUE(scenario_->topology.fully_available());
}

TEST_F(FaultModelTest, AvailabilityScoringValidatesItsInputs) {
  const auto call = [&](double availability, std::size_t samples) {
    return sim::score_under_outages(scenario_->topology, scenario_->library,
                                    scenario_->requests, *placement_, availability,
                                    samples, Rng(5));
  };
  EXPECT_THROW((void)call(0.0, 4), std::invalid_argument);
  EXPECT_THROW((void)call(-0.5, 4), std::invalid_argument);
  EXPECT_THROW((void)call(1.5, 4), std::invalid_argument);
  EXPECT_THROW((void)call(std::nan(""), 4), std::invalid_argument);
  EXPECT_THROW((void)call(0.9, 0), std::invalid_argument);
}

// ------------------------------------------------------- topology masking

TEST_F(FaultModelTest, AvailabilityMaskZeroesLinksAndRestores) {
  wireless::NetworkTopology topology = scenario_->topology;
  ASSERT_TRUE(topology.fully_available());
  const std::size_t M = topology.num_servers();

  std::vector<char> up(M, 1);
  up[0] = 0;
  topology.set_availability(up);
  EXPECT_FALSE(topology.fully_available());
  EXPECT_FALSE(topology.available(0));
  EXPECT_TRUE(topology.available(1));
  for (UserId k = 0; k < topology.num_users(); ++k) {
    EXPECT_EQ(topology.avg_rate_bps(0, k), 0.0) << "user " << k;
  }

  // Pick a live link of a server other than the masked one (the topology is
  // sparse, so not every (m, k) pair carries a rate).
  ServerId live_m = 1;
  UserId live_k = 0;
  double reference = 0.0;
  for (ServerId m = 1; m < M && reference == 0.0; ++m) {
    for (UserId k = 0; k < topology.num_users() && reference == 0.0; ++k) {
      if (scenario_->topology.avg_rate_bps(m, k) > 0.0) {
        live_m = m;
        live_k = k;
        reference = scenario_->topology.avg_rate_bps(m, k);
      }
    }
  }
  ASSERT_GT(reference, 0.0);

  // Other servers' links are untouched by the mask, and an all-up mask
  // recomputes the original link state bit for bit. Clearing the mask
  // entirely (empty vectors) restores the "no mask" state.
  EXPECT_EQ(topology.avg_rate_bps(live_m, live_k), reference);
  topology.set_availability(std::vector<char>(M, 1));
  EXPECT_TRUE(topology.available(0));
  for (UserId k = 0; k < topology.num_users(); ++k) {
    EXPECT_EQ(topology.avg_rate_bps(0, k), scenario_->topology.avg_rate_bps(0, k));
  }
  topology.set_availability({});
  EXPECT_TRUE(topology.fully_available());

  // Derating multiplies SNR, which strictly lowers the rate.
  std::vector<double> derate(M, 1.0);
  derate[live_m] = 0.25;
  topology.set_availability(std::vector<char>(M, 1), derate);
  EXPECT_LT(topology.avg_rate_bps(live_m, live_k), reference);
  EXPECT_GT(topology.avg_rate_bps(live_m, live_k), 0.0);

  // Size and range validation.
  EXPECT_THROW(topology.set_availability(std::vector<char>(M + 1, 1)),
               std::invalid_argument);
  std::vector<double> bad(M, 1.0);
  bad[0] = -0.5;
  EXPECT_THROW(topology.set_availability(std::vector<char>(M, 1), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching
