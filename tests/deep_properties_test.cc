// Deeper cross-module properties: DP optimality on PEFT-style libraries,
// the Theorem-2 bound with the paper-faithful profit DP, closure algebra,
// fading monotonicity, and consistency between algorithms at scale.
#include <gtest/gtest.h>

#include "src/core/dp_rounding.h"
#include "src/core/exact_solver.h"
#include "src/core/local_search.h"
#include "src/core/trimcaching_gen.h"
#include "src/core/trimcaching_spec.h"
#include "src/model/general_case_generator.h"
#include "src/model/lora_generator.h"
#include "src/support/bitset.h"
#include "tests/test_util.h"

namespace trimcaching {
namespace {

using support::DynamicBitset;
using support::Rng;

// ------------------------------------------------- DP on LoRA-style libraries

class DpOnLora : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpOnLora, ChainPathMatchesBruteForce) {
  Rng rng(GetParam());
  model::LoraLibraryConfig config;
  config.num_foundations = 2;
  config.adapters_per_foundation = 5;
  config.foundation_bytes = support::megabytes(100);
  config.adapter_fraction = 0.05;
  const auto lib = model::build_lora_library(config, rng);
  std::vector<double> utilities(lib.num_models());
  for (auto& u : utilities) u = rng.uniform(0.1, 1.0);
  // Capacity fits one foundation plus some adapters — the combination choice
  // (which foundation(s) to host) is the crux.
  const support::Bytes capacity = support::megabytes(140);
  core::SpecSolverConfig solver;
  solver.mode = core::DpMode::kWeightQuantized;
  solver.weight_states = 140;  // 1 MB quanta; all sizes whole MB
  const auto result = core::solve_server_subproblem(lib, utilities, capacity, solver);
  EXPECT_TRUE(result.used_chain_path);
  const double brute = testutil::brute_force_subproblem(lib, utilities, capacity);
  EXPECT_NEAR(result.value, brute, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOnLora, ::testing::Range<std::uint64_t>(0, 8));

// -------------------------------------- Theorem 2 with the profit-rounding DP

class Theorem2ProfitMode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2ProfitMode, SpecMeetsHalfTimesOneMinusEps) {
  const auto world = testutil::random_world(GetParam() + 300, 2, 6, 8, 10, 25.0, 400.0);
  const auto problem = world.problem();
  const auto optimal = core::exact_optimal(problem);
  for (const double eps : {0.3, 0.1}) {
    core::SpecConfig config;
    config.solver.mode = core::DpMode::kProfitRounding;
    config.solver.epsilon = eps;
    const auto spec = core::trimcaching_spec(problem, config);
    EXPECT_GE(spec.hit_ratio, 0.5 * (1.0 - eps) * optimal.hit_ratio - 1e-9)
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2ProfitMode,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---------------------------------------------------------- closure algebra

class ClosureAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosureAlgebra, ClosureContainsPartsAndIsUnionClosed) {
  Rng rng(GetParam());
  const auto lib = testutil::random_library(rng, 8, 10);
  const auto closure = lib.shared_combination_closure();
  const std::size_t beta = lib.shared_blocks().size();
  auto contains = [&closure](const DynamicBitset& set) {
    for (const auto& element : closure) {
      if (element == set) return true;
    }
    return false;
  };
  // Every model's shared part is in the closure.
  for (ModelId i = 0; i < lib.num_models(); ++i) {
    EXPECT_TRUE(contains(lib.shared_part(i)));
  }
  // The closure is union-closed (pairwise suffices for finite BFS closures).
  for (const auto& a : closure) {
    for (const auto& b : closure) {
      DynamicBitset u = a;
      u |= b;
      EXPECT_TRUE(contains(u));
    }
  }
  // And contains the empty set.
  EXPECT_TRUE(contains(DynamicBitset(beta)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureAlgebra, ::testing::Range<std::uint64_t>(0, 6));

// ----------------------------------------------------- fading monotonicity

TEST(FadingMonotonicity, WorseGainNeverShortensDelivery) {
  Rng rng(9);
  wireless::RadioConfig radio;
  const auto topo = wireless::sample_topology(wireless::Area{800.0}, radio, 4, 10,
                                              support::gigabytes(1), rng);
  const support::Bytes payload = support::megabytes(80);
  for (UserId k = 0; k < topo.num_users(); ++k) {
    for (ServerId m = 0; m < topo.num_servers(); ++m) {
      const double base = topo.delivery_seconds(m, k, payload);
      const double faded = topo.delivery_seconds(
          m, k, payload,
          [&](ServerId mm, UserId kk) { return topo.faded_rate_bps(mm, kk, 0.3); });
      if (std::isinf(base)) {
        EXPECT_TRUE(std::isinf(faded));
      } else {
        EXPECT_GE(faded, base - 1e-12);
      }
    }
  }
}

TEST(FadingMonotonicity, RateScalesWithGainMonotonically) {
  wireless::ChannelParams params;
  double prev = 0.0;
  for (const double gain : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    const double rate = wireless::shannon_rate(params, 1e8, 10.0, 150.0, gain);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(NoiseFigure, RaisesNoiseFloor) {
  wireless::ChannelParams quiet;
  wireless::ChannelParams noisy;
  noisy.noise_figure_db = 9.0;
  EXPECT_NEAR(noisy.effective_noise_psd() / quiet.effective_noise_psd(),
              7.943282347, 1e-6);
  EXPECT_LT(wireless::shannon_rate(noisy, 1e8, 10.0, 150.0),
            wireless::shannon_rate(quiet, 1e8, 10.0, 150.0));
  noisy.noise_figure_db = -1.0;
  EXPECT_THROW(noisy.validate(), std::invalid_argument);
}

// ------------------------------------------- Spec on the general-case library

TEST(SpecOnGeneralCase, RunsOnReducedLibraryAndBeatsGenOnAverage) {
  // Fig. 6b's observation: where Spec terminates in the general case, its
  // placements are at least as good as Gen's.
  double spec_total = 0.0, gen_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    wireless::RadioConfig radio;
    auto topology = wireless::sample_topology(wireless::Area{400.0}, radio, 2, 6,
                                              support::megabytes(200), rng);
    auto library =
        model::build_general_case_library(model::reduced_general_case_config(), rng);
    workload::RequestConfig req;
    req.models_per_user = 27;
    auto requests =
        workload::RequestModel::generate(6, library.num_models(), req, rng);
    const testutil::World world{std::move(topology), std::move(library),
                                std::move(requests)};
    const auto problem = world.problem();
    spec_total += core::trimcaching_spec(problem).hit_ratio;
    gen_total += core::trimcaching_gen(problem).hit_ratio;
  }
  EXPECT_GE(spec_total, gen_total - 1e-9);
}

// ------------------------------------------------ optimal dominates everything

class OptimalDominatesAll : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalDominatesAll, IncludingLocalSearchRefinements) {
  const auto world = testutil::random_world(GetParam() + 70, 2, 6, 8, 10, 25.0, 400.0);
  const auto problem = world.problem();
  const auto optimal = core::exact_optimal(problem);
  const auto gen = core::trimcaching_gen(problem);
  const auto refined = core::local_search(problem, gen.placement);
  EXPECT_GE(optimal.hit_ratio + 1e-9, refined.hit_ratio);
  EXPECT_GE(refined.hit_ratio + 1e-9, gen.hit_ratio);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalDominatesAll,
                         ::testing::Range<std::uint64_t>(0, 8));

// ------------------------------------------------------------- bitset corners

TEST(BitsetCorners, EmptyBitsetBehaves) {
  DynamicBitset empty(0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_TRUE(empty.none());
  DynamicBitset other(0);
  EXPECT_TRUE(empty.is_subset_of(other));
  EXPECT_FALSE(empty.intersects(other));
  EXPECT_EQ(empty, other);
}

TEST(BitsetCorners, ExactWordBoundary) {
  DynamicBitset b(64);
  b.set(63);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.to_indices(), std::vector<std::size_t>({63}));
  EXPECT_THROW(b.set(64), std::out_of_range);
}

}  // namespace
}  // namespace trimcaching
