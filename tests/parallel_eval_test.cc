// Determinism and equivalence contract of the parallel evaluation engine
// (EvalPlan + thread-pool Monte-Carlo):
//
//   * EvalPlan-based expected_hit_ratio matches the legacy
//     core::expected_hit_ratio on every solver's placement;
//   * fading_hit_ratio is bit-identical for threads = 1 vs threads = 8;
//   * run_comparison yields identical SolverStats for any thread count;
//   * all solvers in one comparison see identical channel draws
//     (regression for the old fragile copied-Rng fading sharing);
//   * mobility invalidates the cached plan (revision watching).
#include <gtest/gtest.h>

#include "src/core/objective.h"
#include "src/core/solver_registry.h"
#include "src/sim/eval_plan.h"
#include "src/sim/evaluator.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/scenario.h"
#include "src/support/parallel.h"

namespace trimcaching::sim {
namespace {

using support::Rng;

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.num_servers = 4;
  config.num_users = 8;
  config.library_size = 12;
  config.special.models_per_family = 10;
  config.capacity_bytes = support::megabytes(400);
  return config;
}

const std::vector<std::string>& solver_specs() {
  static const std::vector<std::string> specs = {"spec", "gen", "independent"};
  return specs;
}

TEST(EvalPlan, MatchesLegacyExpectedHitRatioOnEverySolver) {
  Rng rng(31);
  const Scenario scenario = build_scenario(small_config(), rng);
  const core::PlacementProblem problem = scenario.problem();
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);
  for (const auto& spec : solver_specs()) {
    core::SolverContext context(rng.fork(7));
    const auto outcome =
        core::SolverRegistry::instance().make(spec)->run(problem, context);
    EXPECT_NEAR(evaluator.expected_hit_ratio(outcome.placement),
                core::expected_hit_ratio(problem, outcome.placement), 1e-12)
        << spec;
  }
}

TEST(EvalPlan, RowAndLinkArenaShape) {
  Rng rng(32);
  const Scenario scenario = build_scenario(small_config(), rng);
  const EvalPlan plan(scenario.topology, scenario.library, scenario.requests);
  EXPECT_EQ(plan.num_users(), scenario.topology.num_users());
  std::size_t links = 0;
  for (UserId k = 0; k < scenario.topology.num_users(); ++k) {
    links += scenario.topology.servers_covering(k).size();
  }
  EXPECT_EQ(plan.num_links(), links);
  // Rows are pre-filtered to p > 0 with positive deadline slack.
  EXPECT_LE(plan.num_rows(),
            scenario.requests.num_users() * scenario.requests.num_models());
  EXPECT_GT(plan.num_rows(), 0u);
  EXPECT_EQ(plan.topology_revision(), scenario.topology.revision());
}

TEST(EvalPlan, FadingBitIdenticalAcrossThreadCounts) {
  Rng rng(33);
  const Scenario scenario = build_scenario(small_config(), rng);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(rng.fork(1));
  const auto placement =
      core::SolverRegistry::instance().make("gen")->run(problem, context).placement;
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);

  const Rng base(5);
  const auto serial = evaluator.fading_hit_ratio(placement, 64, base, 1);
  const auto threaded = evaluator.fading_hit_ratio(placement, 64, base, 8);
  EXPECT_DOUBLE_EQ(serial.mean, threaded.mean);
  EXPECT_DOUBLE_EQ(serial.stddev, threaded.stddev);
  EXPECT_DOUBLE_EQ(serial.min, threaded.min);
  EXPECT_DOUBLE_EQ(serial.max, threaded.max);
  EXPECT_EQ(serial.count, threaded.count);
}

TEST(EvalPlan, FadingDoesNotAdvanceBaseRng) {
  Rng rng(34);
  const Scenario scenario = build_scenario(small_config(), rng);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(rng.fork(1));
  const auto placement =
      core::SolverRegistry::instance().make("gen")->run(problem, context).placement;
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);
  const Rng base(77);
  const auto first = evaluator.fading_hit_ratio(placement, 32, base, 2);
  const auto second = evaluator.fading_hit_ratio(placement, 32, base, 2);
  EXPECT_DOUBLE_EQ(first.mean, second.mean);
}

TEST(RunComparison, StatsBitIdenticalAcrossThreadCounts) {
  MonteCarloConfig serial_mc;
  serial_mc.topologies = 4;
  serial_mc.fading_realizations = 40;
  serial_mc.threads = 1;
  MonteCarloConfig threaded_mc = serial_mc;
  threaded_mc.threads = 8;

  const auto serial = run_comparison(small_config(), solver_specs(), serial_mc);
  const auto threaded = run_comparison(small_config(), solver_specs(), threaded_mc);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t a = 0; a < serial.size(); ++a) {
    // Everything derived from random draws must be bit-identical; wall-clock
    // runtime is a measurement, not a draw, and is exempt.
    EXPECT_DOUBLE_EQ(serial[a].fading_hit_ratio.mean, threaded[a].fading_hit_ratio.mean);
    EXPECT_DOUBLE_EQ(serial[a].fading_hit_ratio.stddev,
                     threaded[a].fading_hit_ratio.stddev);
    EXPECT_DOUBLE_EQ(serial[a].expected_hit_ratio.mean,
                     threaded[a].expected_hit_ratio.mean);
    EXPECT_DOUBLE_EQ(serial[a].gain_evaluations.mean, threaded[a].gain_evaluations.mean);
    EXPECT_DOUBLE_EQ(serial[a].iterations.mean, threaded[a].iterations.mean);
    EXPECT_EQ(serial[a].threads, 1u);
    EXPECT_EQ(threaded[a].threads, 8u);
  }
}

TEST(RunComparison, AllSolversSeeIdenticalChannelDraws) {
  // Regression for the old fragile scheme, where a copied fading Rng relied
  // on fork() advancing the parent: running the same solver twice in one
  // comparison must produce bit-identical fading statistics.
  MonteCarloConfig mc;
  mc.topologies = 3;
  mc.fading_realizations = 50;
  mc.threads = 2;
  const auto stats = run_comparison(small_config(), {"gen", "gen"}, mc);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].fading_hit_ratio.mean, stats[1].fading_hit_ratio.mean);
  EXPECT_DOUBLE_EQ(stats[0].fading_hit_ratio.stddev, stats[1].fading_hit_ratio.stddev);
  EXPECT_DOUBLE_EQ(stats[0].expected_hit_ratio.mean, stats[1].expected_hit_ratio.mean);
}

TEST(Evaluator, RebuildsPlanWhenTopologyMoves) {
  Rng rng(35);
  Scenario scenario = build_scenario(small_config(), rng);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(rng.fork(1));
  const auto placement =
      core::SolverRegistry::instance().make("gen")->run(problem, context).placement;
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);

  const double before = evaluator.expected_hit_ratio(placement);
  const std::uint64_t revision_before = evaluator.plan().topology_revision();

  // Move every user; association and rates change, so the cached plan must
  // be rebuilt (legacy Evaluator semantics: evaluate the *current* snapshot).
  std::vector<wireless::Point> moved;
  for (UserId k = 0; k < scenario.topology.num_users(); ++k) {
    auto p = scenario.topology.user_position(k);
    p.x = scenario.topology.area().side_m - p.x;
    p.y = scenario.topology.area().side_m - p.y;
    moved.push_back(p);
  }
  scenario.topology.update_user_positions(std::move(moved));
  EXPECT_NE(evaluator.plan().topology_revision(), revision_before);
  EXPECT_NEAR(evaluator.expected_hit_ratio(placement),
              core::expected_hit_ratio(scenario.problem(), placement), 1e-12);
  (void)before;
}

}  // namespace
}  // namespace trimcaching::sim
