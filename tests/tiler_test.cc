// Contracts of the scale-out scenario engine:
//
//   * tiled-vs-untiled *equivalence* when tiles are coverage-disjoint
//     (clustered deployment, relay disabled): identical placements;
//   * halo correctness on a crafted boundary-user instance: the boundary
//     user rides into the neighbour tile and gets served, matching the
//     untiled solution; without a halo it is lost;
//   * bit-identity of ScenarioTiler::solve and of the parallelized Spec/Gen
//     inner loops (utility accumulation, batched gains, sharded DP fills)
//     across thread counts;
//   * PlacementProblem sub-views agree with the full instance cell by cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "src/core/objective.h"
#include "src/core/solver_registry.h"
#include "src/sim/scenario.h"
#include "src/sim/tiler.h"
#include "src/support/parallel.h"

namespace trimcaching::sim {
namespace {

using support::Rng;

/// Builds a 1 km scenario from explicit server/user positions with the
/// backhaul throttled to ~1 kbps, so relays can never meet a deadline and
/// eligibility is strictly coverage-local — the regime where spatial tiling
/// is exact.
Scenario explicit_scenario(std::vector<wireless::Point> servers,
                           std::vector<wireless::Point> users, Rng& rng) {
  const wireless::Area area{1000.0};
  wireless::RadioConfig radio;
  radio.backhaul_bps = 1e3;  // hours per model: a relay is never eligible
  std::vector<support::Bytes> capacities(servers.size(), support::gigabytes(1.0));
  wireless::NetworkTopology topology(area, radio, std::move(servers), std::move(users),
                                     std::move(capacities));

  model::SpecialCaseConfig special;
  special.models_per_family = 8;
  auto library = model::build_special_case_library(special, rng);

  workload::RequestConfig requests;
  requests.models_per_user = 10;
  auto request_model = workload::RequestModel::generate(
      topology.num_users(), library.num_models(), requests, rng);
  return Scenario{std::move(topology), std::move(library), std::move(request_model)};
}

/// Four server clusters at the quadrant centers, each with its own users
/// well inside coverage; inter-cluster gaps exceed the coverage radius, so
/// with relays disabled the 2x2 tiles are fully coverage-disjoint.
Scenario clustered_scenario(Rng& rng) {
  const std::vector<wireless::Point> centers = {
      {250, 250}, {750, 250}, {250, 750}, {750, 750}};
  std::vector<wireless::Point> servers;
  std::vector<wireless::Point> users;
  for (const auto& center : centers) {
    servers.push_back(center);
    for (std::size_t u = 0; u < 6; ++u) {
      users.push_back({center.x + rng.uniform(-140.0, 140.0),
                       center.y + rng.uniform(-140.0, 140.0)});
    }
  }
  return explicit_scenario(std::move(servers), std::move(users), rng);
}

void expect_same_placements(const core::PlacementSolution& a,
                            const core::PlacementSolution& b) {
  ASSERT_EQ(a.num_servers(), b.num_servers());
  ASSERT_EQ(a.num_models(), b.num_models());
  ASSERT_EQ(a.total_placements(), b.total_placements());
  for (ServerId m = 0; m < a.num_servers(); ++m) {
    auto lhs = a.models_on(m);
    auto rhs = b.models_on(m);
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs) << "server " << m;
  }
}

TEST(ScenarioTiler, CoverageDisjointTilesMatchUntiledExactly) {
  Rng rng(91);
  const Scenario scenario = clustered_scenario(rng);
  TilerConfig config;
  config.tiles_x = 2;
  config.tiles_y = 2;
  const ScenarioTiler tiler(scenario, config);
  // Every cluster lands in its own tile and no user crosses tiles.
  EXPECT_EQ(tiler.halo_memberships(), 0u);

  const auto tiled = tiler.solve("gen", 17);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(Rng(17).at(0x711E, 0));
  const auto untiled = core::SolverRegistry::instance().make("gen")->run(problem, context);

  expect_same_placements(tiled.placement, untiled.placement);
  EXPECT_NEAR(core::expected_hit_ratio(problem, tiled.placement),
              core::expected_hit_ratio(problem, untiled.placement), 1e-12);
  EXPECT_NEAR(tiled.hit_ratio, untiled.hit_ratio, 1e-9);
}

TEST(ScenarioTiler, HaloCarriesBoundaryUserIntoNeighbourTile) {
  Rng rng(92);
  // Two servers in opposite 2x2 tiles plus one crafted boundary user at
  // (510, 250): its home tile (1, 0) has no server, and only the tile-(0,0)
  // server at (250, 250) covers it (distance 260 < coverage 275; the other
  // server is ~554 m away). Only the halo can carry it into tile (0, 0).
  std::vector<wireless::Point> servers = {{250, 250}, {750, 750}};
  std::vector<wireless::Point> users = {{510.0, 250.0}};
  for (std::size_t u = 0; u < 5; ++u) {
    users.push_back({250 + rng.uniform(-120.0, 120.0), 250 + rng.uniform(-120.0, 120.0)});
    users.push_back({750 + rng.uniform(-120.0, 120.0), 750 + rng.uniform(-120.0, 120.0)});
  }
  const Scenario scenario = explicit_scenario(std::move(servers), std::move(users), rng);

  TilerConfig with_halo;
  with_halo.tiles_x = 2;
  with_halo.tiles_y = 2;
  const ScenarioTiler halo_tiler(scenario, with_halo);
  EXPECT_GE(halo_tiler.halo_memberships(), 1u);
  // The boundary user is a member of both its home tile and the covering
  // server's tile.
  std::size_t memberships = 0;
  for (const Tile& tile : halo_tiler.tiles()) {
    if (std::find(tile.users.begin(), tile.users.end(), UserId{0}) !=
        tile.users.end()) {
      ++memberships;
    }
  }
  EXPECT_EQ(memberships, 2u);

  TilerConfig no_halo = with_halo;
  no_halo.halo_m = 0.0;
  const ScenarioTiler bare_tiler(scenario, no_halo);

  const auto with = halo_tiler.solve("gen", 17);
  const auto without = bare_tiler.solve("gen", 17);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(Rng(17).at(0x711E, 0));
  const auto untiled = core::SolverRegistry::instance().make("gen")->run(problem, context);

  // With the halo the boundary user's requests are served exactly as in the
  // untiled solution; without it they are structurally lost.
  EXPECT_NEAR(with.hit_ratio, untiled.hit_ratio, 1e-9);
  EXPECT_LT(without.hit_ratio, with.hit_ratio);
}

TEST(ScenarioTiler, SolveBitIdenticalAcrossThreadCounts) {
  ScenarioConfig config;
  config.num_servers = 24;
  config.num_users = 120;
  config.area_side_m = 2000.0;
  config.library_size = 60;
  config.special.models_per_family = 20;
  config.requests.models_per_user = 15;
  Rng rng(93);
  const Scenario scenario = build_scenario(config, rng);
  TilerConfig tiler_config;
  tiler_config.tiles_x = 3;
  tiler_config.tiles_y = 3;
  const ScenarioTiler tiler(scenario, tiler_config);

  const auto serial = tiler.solve("gen", 5, 1);
  const auto threaded = tiler.solve("gen", 5, 8);
  expect_same_placements(serial.placement, threaded.placement);
  EXPECT_DOUBLE_EQ(serial.hit_ratio, threaded.hit_ratio);
  EXPECT_EQ(serial.gain_evaluations, threaded.gain_evaluations);
  EXPECT_EQ(serial.iterations, threaded.iterations);
  EXPECT_EQ(serial.tiles_solved, threaded.tiles_solved);
}

TEST(ParallelSolvers, SpecAndGenInnerLoopsBitIdenticalAcrossThreadCounts) {
  ScenarioConfig config;
  config.num_servers = 6;
  config.num_users = 40;
  config.library_size = 30;
  config.special.models_per_family = 12;
  config.requests.models_per_user = 12;
  Rng rng(94);
  const Scenario scenario = build_scenario(config, rng);
  const core::PlacementProblem problem = scenario.problem();

  // eps=0.001 inflates the profit DP past the parallel-fill threshold, and
  // states=200000 does the same for the weight-quantized mode, so the
  // sharded table fills actually execute.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"spec:threads=1", "spec:threads=8"},
      {"spec:eps=0.001,threads=1", "spec:eps=0.001,threads=8"},
      {"spec:mode=weight,states=200000,threads=1",
       "spec:mode=weight,states=200000,threads=8"},
      {"gen:threads=1", "gen:threads=8"},
      {"gen_naive:threads=1", "gen_naive:threads=8"},
      {"gen_naive:rule=per_byte,threads=1", "gen_naive:rule=per_byte,threads=8"},
  };
  for (const auto& [serial_spec, threaded_spec] : pairs) {
    core::SolverContext serial_context(Rng(7));
    core::SolverContext threaded_context(Rng(7));
    const auto& registry = core::SolverRegistry::instance();
    const auto serial = registry.make(serial_spec)->run(problem, serial_context);
    const auto threaded = registry.make(threaded_spec)->run(problem, threaded_context);
    expect_same_placements(serial.placement, threaded.placement);
    EXPECT_DOUBLE_EQ(serial.hit_ratio, threaded.hit_ratio) << serial_spec;
    EXPECT_EQ(serial.gain_evaluations, threaded.gain_evaluations) << serial_spec;
    EXPECT_EQ(serial.iterations, threaded.iterations) << serial_spec;
  }
}

TEST(ParallelSolvers, ThreadedSpecsMatchLegacyDefaults) {
  // threads=N must change nothing versus the pre-parallel defaults.
  ScenarioConfig config;
  config.num_servers = 5;
  config.num_users = 30;
  config.library_size = 24;
  config.special.models_per_family = 10;
  Rng rng(95);
  const Scenario scenario = build_scenario(config, rng);
  const core::PlacementProblem problem = scenario.problem();
  for (const std::string base : {"spec", "gen", "gen_naive", "independent"}) {
    core::SolverContext lhs_context(Rng(3));
    core::SolverContext rhs_context(Rng(3));
    const auto& registry = core::SolverRegistry::instance();
    const auto lhs = registry.make(base)->run(problem, lhs_context);
    const auto rhs = registry.make(base == "independent" ? base : base + ":threads=8")
                         ->run(problem, rhs_context);
    expect_same_placements(lhs.placement, rhs.placement);
    EXPECT_DOUBLE_EQ(lhs.hit_ratio, rhs.hit_ratio) << base;
  }
}

TEST(PlacementProblemView, SubsetAgreesWithFullInstance) {
  ScenarioConfig config;
  config.num_servers = 8;
  config.num_users = 50;
  config.library_size = 30;
  config.special.models_per_family = 12;
  Rng rng(96);
  const Scenario scenario = build_scenario(config, rng);
  const core::PlacementProblem full = scenario.problem();

  const std::vector<ServerId> servers = {1, 3, 4, 7};
  const std::vector<UserId> users = {0, 5, 6, 11, 23, 42, 49};
  const core::PlacementProblem view(scenario.topology, scenario.library,
                                    scenario.requests, servers, users);
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(full.is_view());
  EXPECT_EQ(view.num_servers(), servers.size());
  EXPECT_EQ(view.num_users(), users.size());
  EXPECT_EQ(view.num_models(), full.num_models());

  double expected_mass = 0.0;
  for (const UserId gk : users) {
    for (ModelId i = 0; i < full.num_models(); ++i) {
      expected_mass += scenario.requests.probability(gk, i);
    }
  }
  EXPECT_NEAR(view.total_mass(), expected_mass, 1e-12);

  for (std::size_t m = 0; m < servers.size(); ++m) {
    EXPECT_EQ(view.global_server(static_cast<ServerId>(m)), servers[m]);
    EXPECT_EQ(view.capacity(static_cast<ServerId>(m)), full.capacity(servers[m]));
    for (std::size_t k = 0; k < users.size(); ++k) {
      for (ModelId i = 0; i < full.num_models(); ++i) {
        EXPECT_EQ(view.eligible(static_cast<ServerId>(m), static_cast<UserId>(k), i),
                  full.eligible(servers[m], users[k], i))
            << "m=" << servers[m] << " k=" << users[k] << " i=" << i;
      }
    }
    // Hit lists carry the same masses, re-indexed to view-local users.
    for (ModelId i = 0; i < full.num_models(); ++i) {
      const auto local = view.hit_list(static_cast<ServerId>(m), i);
      double local_mass = 0.0;
      for (const auto& entry : local) {
        EXPECT_LT(entry.user, users.size());
        local_mass += entry.mass;
      }
      double global_mass = 0.0;
      for (const auto& entry : full.hit_list(servers[m], i)) {
        if (std::find(users.begin(), users.end(), entry.user) != users.end()) {
          global_mass += entry.mass;
        }
      }
      EXPECT_NEAR(local_mass, global_mass, 1e-12);
    }
  }

  EXPECT_THROW(core::PlacementProblem(scenario.topology, scenario.library,
                                      scenario.requests, {3, 1}, users),
               std::invalid_argument);
  EXPECT_THROW(core::PlacementProblem(scenario.topology, scenario.library,
                                      scenario.requests, {}, users),
               std::invalid_argument);
}

TEST(ScenarioConfigValidation, SelfDiagnosingMessages) {
  ScenarioConfig config;
  config.library_size = 10'000;  // default special generator produces 300
  try {
    config.validate();
    FAIL() << "oversized library_size must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("library_size"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("300"), std::string::npos);
  }

  config = ScenarioConfig{};
  config.num_servers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = ScenarioConfig{};
  config.num_users = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = ScenarioConfig{};
  config.area_side_m = -5.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.area_side_m = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = ScenarioConfig{};
  config.requests.models_per_user = 10'000;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  // Boundary: exactly the generated library size is fine.
  config = ScenarioConfig{};
  config.library_size = 300;
  EXPECT_NO_THROW(config.validate());
}

TEST(ScaledGenerators, ZooScaleLibrariesAssemble) {
  Rng rng(97);
  model::SpecialCaseConfig special;
  special.models_per_family = 1000;
  const auto zoo = model::build_special_case_library(special, rng);
  EXPECT_EQ(zoo.num_models(), 3000u);
  // Bottom-layer freezing keeps the shared-block count bounded by the
  // distinct freeze depths, not the zoo size (the Spec-tractable regime).
  EXPECT_LE(zoo.shared_blocks().size(), 3u * 110u);

  model::LoraLibraryConfig lora;
  lora.num_foundations = 4;
  lora.adapters_per_foundation = 2500;
  const auto adapters = model::build_lora_library(lora, rng);
  EXPECT_EQ(adapters.num_models(), 10'000u);
  EXPECT_EQ(adapters.shared_blocks().size(), 4u);
  const auto stats = adapters.stats();
  EXPECT_GT(stats.sharing_ratio, 0.9);
}

}  // namespace
}  // namespace trimcaching::sim
