// Tests for the serialization module, the extra placement baselines, and
// the reactive LRU mode of the serving engine.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/baselines.h"
#include "src/core/trimcaching_gen.h"
#include "src/io/serialization.h"
#include "src/model/special_case_generator.h"
#include "src/serve/engine.h"
#include "src/sim/scenario.h"
#include "tests/test_util.h"

namespace trimcaching {
namespace {

using support::Rng;

// -------------------------------------------------------------- serialization

class SerializationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationTest, LibraryRoundTrip) {
  Rng rng(GetParam());
  const auto lib = testutil::random_library(rng, 12, 15);
  const auto text = io::serialize_library(lib);
  const auto parsed = io::parse_library(text);
  ASSERT_EQ(parsed.num_models(), lib.num_models());
  ASSERT_EQ(parsed.num_blocks(), lib.num_blocks());
  for (ModelId i = 0; i < lib.num_models(); ++i) {
    EXPECT_EQ(parsed.model(i).blocks, lib.model(i).blocks);
    EXPECT_EQ(parsed.model_size(i), lib.model_size(i));
    EXPECT_EQ(parsed.specific_size(i), lib.specific_size(i));
  }
  EXPECT_EQ(parsed.shared_blocks(), lib.shared_blocks());
  // Serialization is stable: a second round trip is byte-identical.
  EXPECT_EQ(io::serialize_library(parsed), text);
}

TEST_P(SerializationTest, PlacementRoundTrip) {
  const auto world = testutil::random_world(GetParam(), 3, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  const auto placement = core::trimcaching_gen(problem).placement;
  const auto parsed = io::parse_placement(io::serialize_placement(placement));
  ASSERT_EQ(parsed.num_servers(), placement.num_servers());
  ASSERT_EQ(parsed.num_models(), placement.num_models());
  for (ServerId m = 0; m < placement.num_servers(); ++m) {
    EXPECT_EQ(parsed.models_on(m), placement.models_on(m));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(Serialization, ResNetLibraryRoundTrip) {
  Rng rng(3);
  model::SpecialCaseConfig config;
  config.models_per_family = 5;
  const auto lib = model::build_special_case_library(config, rng);
  const auto parsed = io::parse_library(io::serialize_library(lib));
  EXPECT_EQ(parsed.stats().dedup_total, lib.stats().dedup_total);
  EXPECT_EQ(parsed.stats().num_shared_blocks, lib.stats().num_shared_blocks);
}

TEST(Serialization, FileRoundTrip) {
  Rng rng(4);
  const auto lib = testutil::random_library(rng, 6, 8);
  const std::string path = std::filesystem::temp_directory_path() /
                           "trimcaching_lib_test.txt";
  io::write_library(path, lib);
  const auto loaded = io::read_library(path);
  EXPECT_EQ(loaded.num_models(), lib.num_models());
  std::filesystem::remove(path);
  EXPECT_THROW((void)io::read_library(path), std::runtime_error);
}

TEST(Serialization, ParserRejectsCorruptInput) {
  EXPECT_THROW((void)io::parse_library(""), std::invalid_argument);
  EXPECT_THROW((void)io::parse_library("wrong-magic v1\n"), std::invalid_argument);
  EXPECT_THROW((void)io::parse_library("trimcaching-library v2\n"),
               std::invalid_argument);
  // Block id out of range.
  EXPECT_THROW((void)io::parse_library("trimcaching-library v1\n"
                                       "blocks 1\n"
                                       "100 b0\n"
                                       "models 1\n"
                                       "fam m0 1 5\n"),
               std::invalid_argument);
  // Truncated model list.
  EXPECT_THROW((void)io::parse_library("trimcaching-library v1\n"
                                       "blocks 1\n"
                                       "100 b0\n"
                                       "models 2\n"
                                       "fam m0 1 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)io::parse_placement("trimcaching-placement v1\n"
                                         "servers 1 models 2\n"
                                         "server 3 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)io::parse_placement("trimcaching-placement v1\n"
                                         "servers 1 models 2\n"
                                         "server 0 1 9\n"),
               std::invalid_argument);
}

TEST(Serialization, SanitizesWhitespaceNames) {
  model::ModelLibrary lib;
  const BlockId b = lib.add_block(1000, "has space");
  lib.add_model("tab\tname", "fam ily", {b});
  lib.finalize();
  const auto parsed = io::parse_library(io::serialize_library(lib));
  EXPECT_EQ(parsed.block(0).name, "has_space");
  EXPECT_EQ(parsed.model(0).name, "tab_name");
  EXPECT_EQ(parsed.model(0).family, "fam_ily");
}

TEST(Serialization, UnfinalizedLibraryRejected) {
  model::ModelLibrary lib;
  lib.add_block(10, "b");
  EXPECT_THROW((void)io::serialize_library(lib), std::invalid_argument);
}

// ------------------------------------------------------------------ baselines

class BaselinesTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselinesTest, FeasibleAndConsistent) {
  const auto world = testutil::random_world(GetParam(), 3, 10, 12, 14, 35.0);
  const auto problem = world.problem();
  Rng rng(GetParam() + 5);
  const auto popular = core::top_popularity_caching(problem);
  const auto random = core::random_placement(problem, rng);
  for (const auto* result : {&popular, &random}) {
    for (ServerId m = 0; m < problem.num_servers(); ++m) {
      EXPECT_LE(problem.library().dedup_size(result->placement.models_on(m)),
                problem.capacity(m));
    }
    EXPECT_NEAR(result->hit_ratio,
                core::expected_hit_ratio(problem, result->placement), 1e-12);
  }
}

TEST_P(BaselinesTest, GenDominatesBothBaselines) {
  const auto world = testutil::random_world(GetParam() + 40, 3, 10, 12, 14, 30.0);
  const auto problem = world.problem();
  Rng rng(GetParam() + 9);
  const auto gen = core::trimcaching_gen(problem);
  EXPECT_GE(gen.hit_ratio, core::top_popularity_caching(problem).hit_ratio - 1e-9);
  EXPECT_GE(gen.hit_ratio, core::random_placement(problem, rng).hit_ratio - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinesTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(Baselines, TopPopularityFillsEveryServerIdentically) {
  const auto world = testutil::random_world(11, 3, 8, 10, 12, 40.0);
  const auto problem = world.problem();
  const auto result = core::top_popularity_caching(problem);
  // All servers have the same capacity and see the same ranking.
  for (ServerId m = 1; m < problem.num_servers(); ++m) {
    EXPECT_EQ(result.placement.models_on(m), result.placement.models_on(0));
  }
}

// ----------------------------------------------------------- LRU-mode serving

class LruModeTest : public ::testing::Test {
 protected:
  LruModeTest() {
    sim::ScenarioConfig config;
    config.num_servers = 4;
    config.num_users = 10;
    config.library_size = 20;
    config.special.models_per_family = 10;
    config.capacity_bytes = support::megabytes(400);
    Rng rng(88);
    scenario_ = std::make_unique<sim::Scenario>(sim::build_scenario(config, rng));
    problem_ = std::make_unique<core::PlacementProblem>(scenario_->problem());
    placement_ = std::make_unique<core::PlacementSolution>(
        core::trimcaching_gen(*problem_).placement);
    empty_ = std::make_unique<core::PlacementSolution>(problem_->num_servers(),
                                                       problem_->num_models());
  }

  serve::ServeConfig lru_config(double rate = 0.2, double duration = 1000.0) const {
    serve::ServeConfig config;
    config.policy = "lru";
    config.arrival_rate_per_user = rate;
    config.duration_s = duration;
    return config;
  }

  std::unique_ptr<sim::Scenario> scenario_;
  std::unique_ptr<core::PlacementProblem> problem_;
  std::unique_ptr<core::PlacementSolution> placement_;
  std::unique_ptr<core::PlacementSolution> empty_;
};

TEST_F(LruModeTest, ColdStartFetchesFromCloud) {
  const auto result =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *empty_, lru_config(), Rng(1));
  const auto& totals = result.totals;
  EXPECT_GT(totals.cloud_fetches, 0u);
  EXPECT_GT(totals.cloud_bytes, 0u);
  EXPECT_EQ(totals.requests, totals.deadline_hits + totals.late + totals.unserved);
}

TEST_F(LruModeTest, WarmStartFetchesLess) {
  const auto cold =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *empty_, lru_config(), Rng(2));
  const auto warm =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *placement_, lru_config(), Rng(2));
  EXPECT_LE(warm.totals.cloud_fetches, cold.totals.cloud_fetches);
  EXPECT_GE(warm.hit_ratio, cold.hit_ratio - 0.05);
}

TEST_F(LruModeTest, StaticModeReportsNoCloudFetches) {
  serve::ServeConfig config;
  config.arrival_rate_per_user = 0.2;
  config.duration_s = 500.0;
  const auto result = serve::simulate_serving(
      scenario_->topology, scenario_->library, scenario_->requests, *placement_,
      config, Rng(3));
  EXPECT_EQ(result.totals.cloud_fetches, 0u);
  EXPECT_EQ(result.totals.cloud_bytes, 0u);
}

TEST_F(LruModeTest, PlannedBeatsColdReactive) {
  serve::ServeConfig planned;
  planned.arrival_rate_per_user = 0.2;
  planned.duration_s = 1000.0;
  const auto static_result = serve::simulate_serving(
      scenario_->topology, scenario_->library, scenario_->requests, *placement_,
      planned, Rng(4));
  const auto reactive =
      serve::simulate_serving(scenario_->topology, scenario_->library,
                              scenario_->requests, *empty_, lru_config(), Rng(4));
  EXPECT_GE(static_result.hit_ratio, reactive.hit_ratio - 0.02);
}

TEST_F(LruModeTest, InvalidCloudRateRejected) {
  auto config = lru_config();
  config.cloud_rate_bps = 0.0;
  EXPECT_THROW(
      (void)serve::simulate_serving(scenario_->topology, scenario_->library,
                                    scenario_->requests, *empty_, config, Rng(5)),
      std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching
