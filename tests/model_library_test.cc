#include <gtest/gtest.h>

#include <algorithm>

#include "src/model/model_library.h"
#include "src/support/units.h"

namespace trimcaching::model {
namespace {

using support::Bytes;
using support::DynamicBitset;
using support::megabytes;

/// The Fig. 3-style toy library used across these tests:
///   shared1 (20 MB) in models 0,1 ; shared2 (10 MB) in models 1,2 ;
///   each model has a private block (5/6/7 MB).
ModelLibrary toy_library() {
  ModelLibrary lib;
  const BlockId shared1 = lib.add_block(megabytes(20), "shared1");
  const BlockId shared2 = lib.add_block(megabytes(10), "shared2");
  const BlockId p0 = lib.add_block(megabytes(5), "p0");
  const BlockId p1 = lib.add_block(megabytes(6), "p1");
  const BlockId p2 = lib.add_block(megabytes(7), "p2");
  lib.add_model("m0", "fam", {shared1, p0});
  lib.add_model("m1", "fam", {shared1, shared2, p1});
  lib.add_model("m2", "fam", {shared2, p2});
  lib.finalize();
  return lib;
}

TEST(ModelLibrary, Counts) {
  const auto lib = toy_library();
  EXPECT_EQ(lib.num_models(), 3u);
  EXPECT_EQ(lib.num_blocks(), 5u);
}

TEST(ModelLibrary, ModelSizes) {
  const auto lib = toy_library();
  EXPECT_EQ(lib.model_size(0), megabytes(25));
  EXPECT_EQ(lib.model_size(1), megabytes(36));
  EXPECT_EQ(lib.model_size(2), megabytes(17));
}

TEST(ModelLibrary, SharingClassification) {
  const auto lib = toy_library();
  EXPECT_TRUE(lib.is_shared_block(0));
  EXPECT_TRUE(lib.is_shared_block(1));
  EXPECT_FALSE(lib.is_shared_block(2));
  EXPECT_FALSE(lib.is_shared_block(3));
  EXPECT_FALSE(lib.is_shared_block(4));
  EXPECT_EQ(lib.shared_blocks(), std::vector<BlockId>({0, 1}));
}

TEST(ModelLibrary, ModelsWithBlock) {
  const auto lib = toy_library();
  EXPECT_EQ(lib.models_with_block(0), std::vector<ModelId>({0, 1}));
  EXPECT_EQ(lib.models_with_block(1), std::vector<ModelId>({1, 2}));
  EXPECT_EQ(lib.models_with_block(2), std::vector<ModelId>({0}));
}

TEST(ModelLibrary, SharedParts) {
  const auto lib = toy_library();
  EXPECT_EQ(lib.shared_part(0).to_indices(), std::vector<std::size_t>({0}));
  EXPECT_EQ(lib.shared_part(1).to_indices(), std::vector<std::size_t>({0, 1}));
  EXPECT_EQ(lib.shared_part(2).to_indices(), std::vector<std::size_t>({1}));
  EXPECT_EQ(lib.shared_part_size(1), megabytes(30));
  EXPECT_EQ(lib.specific_size(1), megabytes(6));
}

TEST(ModelLibrary, DedupVsNaive) {
  const auto lib = toy_library();
  // m0 + m1 share shared1: dedup = 20+10+5+6 = 41 MB, naive = 25+36 = 61 MB.
  EXPECT_EQ(lib.dedup_size({0, 1}), megabytes(41));
  EXPECT_EQ(lib.naive_size({0, 1}), megabytes(61));
  // All three: union of all blocks = 48 MB.
  EXPECT_EQ(lib.dedup_size({0, 1, 2}), megabytes(48));
  // Dedup of one model is its own size.
  EXPECT_EQ(lib.dedup_size({2}), lib.model_size(2));
}

TEST(ModelLibrary, CombinationSize) {
  const auto lib = toy_library();
  DynamicBitset combo(2);
  combo.set(0);
  EXPECT_EQ(lib.combination_size(combo), megabytes(20));
  combo.set(1);
  EXPECT_EQ(lib.combination_size(combo), megabytes(30));
  DynamicBitset wrong(3);
  EXPECT_THROW((void)lib.combination_size(wrong), std::invalid_argument);
}

TEST(ModelLibrary, ClosureOfToyLibrary) {
  const auto lib = toy_library();
  // Parts: {s1}, {s1,s2}, {s2}. Closure: {}, {s1}, {s2}, {s1,s2} -> 4.
  const auto closure = lib.shared_combination_closure();
  EXPECT_EQ(closure.size(), 4u);
  // Every element must be a union of parts (sanity: contains the empty set).
  const auto empty_count = std::count_if(
      closure.begin(), closure.end(), [](const DynamicBitset& b) { return b.none(); });
  EXPECT_EQ(empty_count, 1);
}

TEST(ModelLibrary, ClosureCapThrows) {
  // 12 independent pairs of models each sharing a distinct block -> closure
  // would be 2^12; cap at 100 must throw.
  ModelLibrary lib;
  for (int g = 0; g < 12; ++g) {
    const BlockId shared = lib.add_block(megabytes(1), "s");
    const BlockId a = lib.add_block(megabytes(1), "a");
    const BlockId b = lib.add_block(megabytes(1), "b");
    lib.add_model("ma" + std::to_string(g), "f", {shared, a});
    lib.add_model("mb" + std::to_string(g), "f", {shared, b});
  }
  lib.finalize();
  EXPECT_THROW((void)lib.shared_combination_closure(100), std::runtime_error);
  EXPECT_EQ(lib.shared_combination_closure(5000).size(), 4096u);
}

TEST(ModelLibrary, SubsetReindexes) {
  const auto lib = toy_library();
  const auto sub = lib.subset({0, 2});
  EXPECT_EQ(sub.num_models(), 2u);
  // Blocks of m0 (shared1, p0) and m2 (shared2, p2) -> 4 blocks, none shared
  // anymore (each now belongs to a single model).
  EXPECT_EQ(sub.num_blocks(), 4u);
  EXPECT_EQ(sub.shared_blocks().size(), 0u);
  EXPECT_EQ(sub.model_size(0), megabytes(25));
  EXPECT_EQ(sub.model_size(1), megabytes(17));
}

TEST(ModelLibrary, SubsetPreservesSharingWhenBothKept) {
  const auto lib = toy_library();
  const auto sub = lib.subset({0, 1});
  EXPECT_EQ(sub.shared_blocks().size(), 1u);  // shared1 kept shared
  EXPECT_EQ(sub.dedup_size({0, 1}), megabytes(41));
}

TEST(ModelLibrary, SampleSubset) {
  const auto lib = toy_library();
  support::Rng rng(2);
  const auto sub = lib.sample_subset(2, rng);
  EXPECT_EQ(sub.num_models(), 2u);
  EXPECT_THROW((void)lib.sample_subset(0, rng), std::invalid_argument);
  EXPECT_THROW((void)lib.sample_subset(4, rng), std::invalid_argument);
}

TEST(ModelLibrary, Stats) {
  const auto lib = toy_library();
  const auto stats = lib.stats();
  EXPECT_EQ(stats.num_models, 3u);
  EXPECT_EQ(stats.num_blocks, 5u);
  EXPECT_EQ(stats.num_shared_blocks, 2u);
  EXPECT_EQ(stats.naive_total, megabytes(78));
  EXPECT_EQ(stats.dedup_total, megabytes(48));
  EXPECT_NEAR(stats.sharing_ratio, 1.0 - 48.0 / 78.0, 1e-12);
}

TEST(ModelLibrary, LifecycleErrors) {
  ModelLibrary lib;
  EXPECT_THROW((void)lib.add_block(0, "zero"), std::invalid_argument);
  const BlockId b = lib.add_block(megabytes(1), "b");
  EXPECT_THROW((void)lib.add_model("m", "f", {}), std::invalid_argument);
  EXPECT_THROW((void)lib.add_model("m", "f", {b, b}), std::invalid_argument);
  EXPECT_THROW((void)lib.add_model("m", "f", {static_cast<BlockId>(5)}),
               std::invalid_argument);
  EXPECT_THROW((void)lib.model_size(0), std::logic_error);  // not finalized
  lib.add_model("m", "f", {b});
  lib.finalize();
  EXPECT_THROW(lib.finalize(), std::logic_error);
  EXPECT_THROW((void)lib.add_block(megabytes(1), "late"), std::logic_error);
  EXPECT_THROW((void)lib.add_model("late", "f", {b}), std::logic_error);
}

TEST(ModelLibrary, EmptyLibraryCannotFinalize) {
  ModelLibrary lib;
  EXPECT_THROW(lib.finalize(), std::logic_error);
}

}  // namespace
}  // namespace trimcaching::model
