// Contracts of the cross-tile repair pass (core::repair_placement /
// sim::PlacementRepair / the tiler's repair knob):
//
//   * repair never decreases the global Eq. 2 value, on any solver's
//     stitched placement;
//   * coverage-disjoint tilings are a bit-equal no-op (nothing is evicted,
//     nothing is added, the placement is returned unchanged);
//   * a crafted two-tile instance with one shared halo user has its
//     duplicated copies removed: after repair every cached model has
//     exactly one holder and no hit mass is lost;
//   * repair is bit-identical for threads=1 vs threads=8, through the tiler
//     knob and standalone;
//   * the "repair" registry refiner composes ("gen+repair") and never
//     worsens its base.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/objective.h"
#include "src/core/solver_registry.h"
#include "src/core/submodular.h"
#include "src/sim/placement_repair.h"
#include "src/sim/scenario.h"
#include "src/sim/tiler.h"

namespace trimcaching::sim {
namespace {

using support::Rng;

/// Builds a 1 km scenario from explicit server/user positions with the
/// backhaul throttled to ~1 kbps, so relays can never meet a deadline and
/// eligibility is strictly coverage-local.
Scenario explicit_scenario(std::vector<wireless::Point> servers,
                           std::vector<wireless::Point> users, Rng& rng) {
  const wireless::Area area{1000.0};
  wireless::RadioConfig radio;
  radio.backhaul_bps = 1e3;  // hours per model: a relay is never eligible
  std::vector<support::Bytes> capacities(servers.size(), support::gigabytes(1.0));
  wireless::NetworkTopology topology(area, radio, std::move(servers), std::move(users),
                                     std::move(capacities));

  model::SpecialCaseConfig special;
  special.models_per_family = 8;
  auto library = model::build_special_case_library(special, rng);

  workload::RequestConfig requests;
  requests.models_per_user = 10;
  auto request_model = workload::RequestModel::generate(
      topology.num_users(), library.num_models(), requests, rng);
  return Scenario{std::move(topology), std::move(library), std::move(request_model)};
}

/// Four coverage-disjoint server clusters at the quadrant centers (the
/// regime where 2x2 spatial tiling is exact and repair must not act).
Scenario clustered_scenario(Rng& rng) {
  const std::vector<wireless::Point> centers = {
      {250, 250}, {750, 250}, {250, 750}, {750, 750}};
  std::vector<wireless::Point> servers;
  std::vector<wireless::Point> users;
  for (const auto& center : centers) {
    servers.push_back(center);
    for (std::size_t u = 0; u < 6; ++u) {
      users.push_back({center.x + rng.uniform(-140.0, 140.0),
                       center.y + rng.uniform(-140.0, 140.0)});
    }
  }
  return explicit_scenario(std::move(servers), std::move(users), rng);
}

void expect_same_placements(const core::PlacementSolution& a,
                            const core::PlacementSolution& b) {
  ASSERT_EQ(a.num_servers(), b.num_servers());
  ASSERT_EQ(a.num_models(), b.num_models());
  ASSERT_EQ(a.total_placements(), b.total_placements());
  for (ServerId m = 0; m < a.num_servers(); ++m) {
    auto lhs = a.models_on(m);
    auto rhs = b.models_on(m);
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs) << "server " << m;
  }
}

TEST(PlacementRepair, NoOpOnCoverageDisjointTiling) {
  Rng rng(101);
  const Scenario scenario = clustered_scenario(rng);
  TilerConfig raw_config;
  raw_config.tiles_x = 2;
  raw_config.tiles_y = 2;
  TilerConfig repair_config = raw_config;
  repair_config.repair = true;

  const ScenarioTiler raw_tiler(scenario, raw_config);
  const ScenarioTiler repair_tiler(scenario, repair_config);
  ASSERT_EQ(raw_tiler.halo_memberships(), 0u);

  const auto raw = raw_tiler.solve("gen", 17);
  const auto repaired = repair_tiler.solve("gen", 17);
  // Bit-equal placements, nothing evicted, nothing added.
  expect_same_placements(raw.placement, repaired.placement);
  EXPECT_EQ(repaired.duplicates_evicted, 0u);
  EXPECT_EQ(repaired.repair_additions, 0u);
  EXPECT_DOUBLE_EQ(raw.hit_ratio, repaired.hit_ratio);
  EXPECT_DOUBLE_EQ(raw.duplication_factor, repaired.duplication_factor);

  // Standalone engine on the stitched placement agrees.
  const PlacementRepair repairer(scenario, raw_tiler.server_tiles(), {});
  const RepairResult result = repairer.repair(raw.placement);
  expect_same_placements(raw.placement, result.placement);
  EXPECT_EQ(result.duplicates_evicted, 0u);
  EXPECT_EQ(result.models_added, 0u);
}

TEST(PlacementRepair, RemovesCraftedCrossTileDuplicates) {
  Rng rng(102);
  // Two servers in opposite 2x1 tiles and a single shared user at
  // (495, 500): home tile is the left one, and the halo carries it into the
  // right tile too (both servers are within the 275 m coverage radius —
  // distances 195 and 205). Each tile's greedy then caches the user's hot
  // models on *its* server, duplicating them across the tile boundary.
  const Scenario scenario = explicit_scenario(
      {{300, 500}, {700, 500}}, {{495.0, 500.0}}, rng);
  TilerConfig config;
  config.tiles_x = 2;
  config.tiles_y = 1;
  const ScenarioTiler tiler(scenario, config);
  ASSERT_GE(tiler.halo_memberships(), 1u);

  const auto raw = tiler.solve("gen", 17);
  EXPECT_GT(raw.duplication_factor, 1.0);  // the cross-tile waste exists

  const PlacementRepair repairer(scenario, tiler.server_tiles(), {});
  const RepairResult repaired = repairer.repair(raw.placement);
  EXPECT_GE(repaired.duplicates_evicted, 1u);
  // Every surviving model has exactly one holder: the duplicate copies are
  // gone and the refill only adds models nobody else caches.
  for (ModelId i = 0; i < repaired.placement.num_models(); ++i) {
    EXPECT_LE(repaired.placement.holders_of(i).size(), 1u) << "model " << i;
  }
  EXPECT_DOUBLE_EQ(repaired.duplication_after, 1.0);
  EXPECT_LT(repaired.duplication_after, repaired.duplication_before);
  // No hit mass is lost; the freed capacity may even serve more.
  EXPECT_GE(repaired.hit_ratio, raw.hit_ratio - 1e-9);

  const core::PlacementProblem problem = scenario.problem();
  EXPECT_NEAR(core::expected_hit_ratio(problem, repaired.placement),
              repaired.hit_ratio, 1e-9);
}

TEST(PlacementRepair, NeverDecreasesGlobalHitRatio) {
  for (const std::uint64_t seed : {201, 202, 203}) {
    ScenarioConfig config;
    config.num_servers = 16;
    config.num_users = 80;
    config.area_side_m = 1600.0;
    config.library_size = 40;
    config.special.models_per_family = 14;
    config.requests.models_per_user = 12;
    // Wide deadlines keep relays eligible — the regime where tiles overlap
    // through halos and the repair pass actually acts.
    config.requests.deadline_min_s = 2.0;
    config.requests.deadline_max_s = 6.0;
    Rng rng(seed);
    const Scenario scenario = build_scenario(config, rng);
    TilerConfig tiler_config;
    tiler_config.tiles_x = 2;
    tiler_config.tiles_y = 2;
    const ScenarioTiler tiler(scenario, tiler_config);
    const PlacementRepair repairer(scenario, tiler.server_tiles(), {});
    const core::PlacementProblem problem = scenario.problem();

    for (const std::string spec : {"gen", "independent", "top_pop", "random"}) {
      const auto raw = tiler.solve(spec, seed);
      const RepairResult repaired = repairer.repair(raw.placement);
      EXPECT_GE(repaired.hit_ratio, raw.hit_ratio - 1e-9)
          << spec << " seed " << seed;
      EXPECT_LE(repaired.duplication_after, repaired.duplication_before + 1e-12)
          << spec << " seed " << seed;
      // The reported value is the honest global Eq. 2 recompute.
      EXPECT_NEAR(core::expected_hit_ratio(problem, repaired.placement),
                  repaired.hit_ratio, 1e-9)
          << spec << " seed " << seed;
    }
  }
}

TEST(PlacementRepair, BitIdenticalAcrossThreadCounts) {
  ScenarioConfig config;
  config.num_servers = 24;
  config.num_users = 120;
  config.area_side_m = 2000.0;
  config.library_size = 60;
  config.special.models_per_family = 20;
  config.requests.models_per_user = 15;
  config.requests.deadline_min_s = 2.0;
  config.requests.deadline_max_s = 6.0;
  Rng rng(103);
  const Scenario scenario = build_scenario(config, rng);
  TilerConfig tiler_config;
  tiler_config.tiles_x = 3;
  tiler_config.tiles_y = 3;
  tiler_config.repair = true;
  const ScenarioTiler tiler(scenario, tiler_config);

  const auto serial = tiler.solve("gen", 5, 1);
  const auto threaded = tiler.solve("gen", 5, 8);
  expect_same_placements(serial.placement, threaded.placement);
  EXPECT_DOUBLE_EQ(serial.hit_ratio, threaded.hit_ratio);
  EXPECT_DOUBLE_EQ(serial.duplication_factor, threaded.duplication_factor);
  EXPECT_EQ(serial.duplicates_evicted, threaded.duplicates_evicted);
  EXPECT_EQ(serial.repair_additions, threaded.repair_additions);

  // Standalone engine: identical placements *and* work counters.
  TilerConfig raw_config;
  raw_config.tiles_x = 3;
  raw_config.tiles_y = 3;
  const ScenarioTiler raw_tiler(scenario, raw_config);
  const auto raw = raw_tiler.solve("gen", 5, 1);
  const PlacementRepair repairer(scenario, raw_tiler.server_tiles(), {});
  const RepairResult one = repairer.repair(raw.placement, 1);
  const RepairResult eight = repairer.repair(raw.placement, 8);
  expect_same_placements(one.placement, eight.placement);
  EXPECT_DOUBLE_EQ(one.hit_ratio, eight.hit_ratio);
  EXPECT_EQ(one.duplicates_evicted, eight.duplicates_evicted);
  EXPECT_EQ(one.models_added, eight.models_added);
  EXPECT_EQ(one.gain_evaluations, eight.gain_evaluations);
}

TEST(RepairSolver, ComposesAsRefinerAndNeverWorsens) {
  ScenarioConfig config;
  config.num_servers = 6;
  config.num_users = 40;
  config.library_size = 30;
  config.special.models_per_family = 12;
  config.requests.models_per_user = 12;
  Rng rng(104);
  const Scenario scenario = build_scenario(config, rng);
  const core::PlacementProblem problem = scenario.problem();
  const auto& registry = core::SolverRegistry::instance();

  for (const std::string base : {"gen", "top_pop", "independent"}) {
    core::SolverContext base_context(Rng(7));
    core::SolverContext composed_context(Rng(7));
    const auto plain = registry.make(base)->run(problem, base_context);
    const auto composed =
        registry.make(base + "+repair")->run(problem, composed_context);
    EXPECT_GE(composed.hit_ratio, plain.hit_ratio - 1e-9) << base;
    EXPECT_NEAR(core::expected_hit_ratio(problem, composed.placement),
                composed.hit_ratio, 1e-9)
        << base;
  }

  // Standalone "repair" greedy-fills from scratch through the refill
  // machinery and reports the honest Eq. 2 value.
  core::SolverContext context(Rng(7));
  const auto standalone = registry.make("repair")->run(problem, context);
  EXPECT_GT(standalone.hit_ratio, 0.0);
  EXPECT_NEAR(core::expected_hit_ratio(problem, standalone.placement),
              standalone.hit_ratio, 1e-9);
}

TEST(RepairConfigValidation, RejectsBadTolerances) {
  TilerConfig config;
  config.repair_tolerance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.repair_tolerance = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  RepairConfig repair;
  repair.eviction_tolerance = std::numeric_limits<double>::infinity();
  EXPECT_THROW(repair.validate(), std::invalid_argument);

  // server_group must be empty or match the problem's server count.
  Rng rng(105);
  const Scenario scenario = clustered_scenario(rng);
  EXPECT_THROW(PlacementRepair(scenario, {0, 1}, {}), std::invalid_argument);
  const core::PlacementProblem problem = scenario.problem();
  core::PlacementSolution placement(problem.num_servers(), problem.num_models());
  EXPECT_THROW(
      (void)core::repair_placement(problem, placement, {0, 1, 2}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching::sim
