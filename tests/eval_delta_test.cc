// Contracts of the incremental evaluation engine:
//
//   * NetworkTopology::apply_user_moves patches association and the flat
//     link views bit-identically to a full rebuild from the same final
//     positions, across randomized scenarios, move subsets, and chained
//     updates;
//   * EvalPlan::apply_delta yields a plan whose expected_hit_ratio and
//     fading_hit_ratio are bit-identical to a freshly built plan, at
//     threads = 1 and threads = 8;
//   * the structural-churn fallback threshold triggers exactly at the
//     documented boundary (strictly-greater comparison);
//   * the Evaluator never rebuilds on placement-only changes, consumes
//     chaining deltas, and falls back to a rebuild when the chain breaks;
//   * the batched fading kernel is bit-identical to the scalar reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/solver_registry.h"
#include "src/sim/eval_plan.h"
#include "src/sim/evaluator.h"
#include "src/sim/replacement.h"
#include "src/sim/scenario.h"
#include "src/wireless/topology.h"

namespace trimcaching::sim {
namespace {

using support::Rng;
using wireless::NetworkTopology;
using wireless::Point;
using wireless::TopologyDelta;
using wireless::UserMove;

ScenarioConfig varied_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.num_servers = 3 + seed % 6;
  config.num_users = 6 + (seed * 7) % 25;
  config.library_size = 12;
  config.special.models_per_family = 10;
  config.capacity_bytes = support::megabytes(400);
  return config;
}

/// A fresh topology from the same deployment at the given user positions —
/// the from-scratch reference the patched topology must match bit for bit.
NetworkTopology reference_topology(const NetworkTopology& like,
                                   std::vector<Point> user_positions) {
  std::vector<Point> servers;
  std::vector<support::Bytes> capacities;
  for (ServerId m = 0; m < like.num_servers(); ++m) {
    servers.push_back(like.server_position(m));
    capacities.push_back(like.capacity(m));
  }
  return NetworkTopology(like.area(), like.radio(), std::move(servers),
                         std::move(user_positions), std::move(capacities));
}

void expect_same_link_views(const NetworkTopology& patched,
                            const NetworkTopology& fresh) {
  ASSERT_EQ(patched.covering_offsets(), fresh.covering_offsets());
  ASSERT_EQ(patched.covering_flat(), fresh.covering_flat());
  const auto expect_bits = [](const std::vector<double>& a,
                              const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t l = 0; l < a.size(); ++l) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[l]), std::bit_cast<std::uint64_t>(b[l]))
          << "link " << l;
    }
  };
  expect_bits(patched.link_bandwidth_hz(), fresh.link_bandwidth_hz());
  expect_bits(patched.link_mean_snr(), fresh.link_mean_snr());
  expect_bits(patched.link_avg_rate_bps(), fresh.link_avg_rate_bps());
  for (ServerId m = 0; m < patched.num_servers(); ++m) {
    EXPECT_EQ(patched.users_of(m), fresh.users_of(m)) << "server " << m;
  }
}

/// The contract is *bit* identity: EXPECT_DOUBLE_EQ tolerates 4 ULPs, so
/// compare the raw bit patterns instead.
void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << a << " vs " << b;
}

void expect_same_summary(const support::Summary& a, const support::Summary& b) {
  expect_same_bits(a.mean, b.mean);
  expect_same_bits(a.stddev, b.stddev);
  expect_same_bits(a.min, b.min);
  expect_same_bits(a.max, b.max);
  EXPECT_EQ(a.count, b.count);
}

TEST(ApplyUserMoves, BitIdenticalToRebuildAcrossRandomScenarios) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const ScenarioConfig config = varied_config(seed);
    const Scenario scenario = build_scenario(config, rng);
    const core::PlacementProblem problem = scenario.problem();
    core::SolverContext context(rng.fork(11));
    const auto placement =
        core::SolverRegistry::instance().make("gen")->run(problem, context).placement;

    NetworkTopology topology = scenario.topology;  // the patched copy
    EvalPlan plan(topology, scenario.library, scenario.requests);
    std::vector<Point> positions;
    for (UserId k = 0; k < topology.num_users(); ++k) {
      positions.push_back(topology.user_position(k));
    }

    // Three chained delta rounds: random subsets, jitters and teleports.
    for (int round = 0; round < 3; ++round) {
      std::vector<UserMove> moves;
      for (UserId k = 0; k < topology.num_users(); ++k) {
        if (!rng.bernoulli(0.5)) continue;
        Point p = positions[k];
        if (rng.bernoulli(0.25)) {
          // Teleport: guaranteed coverage churn.
          p = Point{rng.uniform(0.0, topology.area().side_m),
                    rng.uniform(0.0, topology.area().side_m)};
        } else {
          p.x = std::clamp(p.x + rng.uniform(-60.0, 60.0), 0.0,
                           topology.area().side_m);
          p.y = std::clamp(p.y + rng.uniform(-60.0, 60.0), 0.0,
                           topology.area().side_m);
        }
        positions[k] = p;
        moves.push_back(UserMove{k, p});
      }

      const TopologyDelta& delta = topology.apply_user_moves(moves, 1.0);
      ASSERT_FALSE(delta.full) << "seed " << seed;
      ASSERT_TRUE(std::is_sorted(delta.dirty_users.begin(), delta.dirty_users.end()));
      plan.apply_delta(topology, delta);

      const NetworkTopology fresh = reference_topology(topology, positions);
      expect_same_link_views(topology, fresh);

      const EvalPlan fresh_plan(fresh, scenario.library, scenario.requests);
      expect_same_bits(plan.expected_hit_ratio(placement),
                       fresh_plan.expected_hit_ratio(placement));
      const Rng fading(seed * 31 + round);
      expect_same_summary(plan.fading_hit_ratio(placement, 16, fading, 1),
                          fresh_plan.fading_hit_ratio(placement, 16, fading, 1));
      expect_same_summary(plan.fading_hit_ratio(placement, 16, fading, 8),
                          fresh_plan.fading_hit_ratio(placement, 16, fading, 8));
    }
  }
}

TEST(ApplyUserMoves, FallbackThresholdBoundary) {
  // One server at the center; user 0 inside its coverage disc, three users
  // far outside. Moving user 0 out of coverage is exactly one structural
  // user out of four.
  const wireless::Area area{1000.0};
  wireless::RadioConfig radio;
  std::vector<Point> servers = {Point{500, 500}};
  const std::vector<Point> users = {Point{520, 500}, Point{20, 20}, Point{30, 900},
                                    Point{950, 40}};
  const std::vector<support::Bytes> capacities(1, support::gigabytes(1.0));
  const std::vector<UserMove> out_of_coverage = {UserMove{0, Point{950, 950}}};

  {
    // structural_count (1) > 0.25 * K (1) is false -> incremental patch.
    NetworkTopology topology(area, radio, servers, users, capacities);
    const TopologyDelta& delta = topology.apply_user_moves(out_of_coverage, 0.25);
    EXPECT_FALSE(delta.full);
    EXPECT_EQ(delta.dirty_users, std::vector<UserId>{0});
    EXPECT_TRUE(topology.servers_covering(0).empty());
  }
  {
    // structural_count (1) > 0.2 * K (0.8) -> full-rebuild fallback.
    NetworkTopology topology(area, radio, servers, users, capacities);
    const TopologyDelta& delta = topology.apply_user_moves(out_of_coverage, 0.2);
    EXPECT_TRUE(delta.full);
    EXPECT_TRUE(delta.dirty_users.empty());
    EXPECT_TRUE(topology.servers_covering(0).empty());
    // The fallback still lands on the exact same state.
    expect_same_link_views(topology,
                           reference_topology(topology, {Point{950, 950}, users[1],
                                                         users[2], users[3]}));
  }
  {
    // A pure jitter (no coverage change) is never structural: even a zero
    // threshold keeps the incremental path.
    NetworkTopology topology(area, radio, servers, users, capacities);
    const TopologyDelta& delta =
        topology.apply_user_moves({UserMove{0, Point{510, 490}}}, 0.0);
    EXPECT_FALSE(delta.full);
    EXPECT_EQ(delta.dirty_users, std::vector<UserId>{0});
  }
  {
    // Validation: out-of-range and duplicate user ids.
    NetworkTopology topology(area, radio, servers, users, capacities);
    EXPECT_THROW((void)topology.apply_user_moves({UserMove{9, Point{1, 1}}}, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)topology.apply_user_moves(
                     {UserMove{0, Point{1, 1}}, UserMove{0, Point{2, 2}}}, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)topology.apply_user_moves({}, -0.5), std::invalid_argument);
  }
}

TEST(ApplyUserMoves, EmptyMoveListIsATrueNoOp) {
  Rng rng(91);
  const Scenario scenario = build_scenario(varied_config(6), rng);
  NetworkTopology topology = scenario.topology;
  const Evaluator evaluator(topology, scenario.library, scenario.requests);
  core::SolverContext context(rng.fork(5));
  const auto placement = core::SolverRegistry::instance()
                             .make("gen")
                             ->run(scenario.problem(), context)
                             .placement;
  (void)evaluator.expected_hit_ratio(placement);

  const std::uint64_t revision = topology.revision();
  const TopologyDelta& delta = topology.apply_user_moves({}, 0.5);
  // No revision bump: plan caches keep matching and skip all maintenance.
  EXPECT_EQ(topology.revision(), revision);
  EXPECT_FALSE(delta.full);
  EXPECT_TRUE(delta.dirty_users.empty());
  EXPECT_EQ(delta.from_revision, revision);
  EXPECT_EQ(delta.to_revision, revision);
  (void)evaluator.expected_hit_ratio(placement);
  EXPECT_EQ(evaluator.plan_stats().builds, 1u);
  EXPECT_EQ(evaluator.plan_stats().deltas, 0u);
}

TEST(EvalPlanDelta, RejectsDeltasThatDoNotChain) {
  Rng rng(77);
  const Scenario scenario = build_scenario(varied_config(4), rng);
  NetworkTopology topology = scenario.topology;
  EvalPlan plan(topology, scenario.library, scenario.requests);

  // A full-rebuild delta must not be patchable.
  std::vector<Point> positions;
  for (UserId k = 0; k < topology.num_users(); ++k) {
    positions.push_back(topology.user_position(k));
  }
  topology.update_user_positions(positions);
  EXPECT_TRUE(topology.last_delta().full);
  EXPECT_THROW(plan.apply_delta(topology, topology.last_delta()),
               std::invalid_argument);

  // A stale chain (two updates behind) must not be patchable either.
  EvalPlan fresh(topology, scenario.library, scenario.requests);
  (void)topology.apply_user_moves({UserMove{0, Point{10, 10}}}, 1.0);
  (void)topology.apply_user_moves({UserMove{0, Point{20, 20}}}, 1.0);
  EXPECT_THROW(fresh.apply_delta(topology, topology.last_delta()),
               std::invalid_argument);
}

TEST(Evaluator, PlacementOnlyChangesNeverTriggerARebuild) {
  Rng rng(21);
  const Scenario scenario = build_scenario(varied_config(2), rng);
  const core::PlacementProblem problem = scenario.problem();
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);
  const Rng fading(3);
  for (const char* spec : {"gen", "spec", "independent"}) {
    core::SolverContext context(rng.fork(5));
    const auto placement =
        core::SolverRegistry::instance().make(spec)->run(problem, context).placement;
    (void)evaluator.expected_hit_ratio(placement);
    (void)evaluator.fading_hit_ratio(placement, 8, fading, 2);
  }
  EXPECT_EQ(evaluator.plan_stats().builds, 1u);
  EXPECT_EQ(evaluator.plan_stats().deltas, 0u);
}

TEST(Evaluator, ConsumesChainingDeltasAndRebuildsOtherwise) {
  Rng rng(22);
  Scenario scenario = build_scenario(varied_config(3), rng);
  const core::PlacementProblem problem = scenario.problem();
  core::SolverContext context(rng.fork(5));
  const auto placement =
      core::SolverRegistry::instance().make("gen")->run(problem, context).placement;
  const Evaluator evaluator(scenario.topology, scenario.library, scenario.requests);

  (void)evaluator.expected_hit_ratio(placement);
  EXPECT_EQ(evaluator.plan_stats().builds, 1u);

  // Incremental move -> the evaluator patches instead of rebuilding, and the
  // patched value matches a from-scratch evaluator bit for bit.
  (void)scenario.topology.apply_user_moves({UserMove{0, Point{123, 456}}}, 1.0);
  const double patched = evaluator.expected_hit_ratio(placement);
  EXPECT_EQ(evaluator.plan_stats().builds, 1u);
  EXPECT_EQ(evaluator.plan_stats().deltas, 1u);
  const Evaluator fresh(scenario.topology, scenario.library, scenario.requests);
  expect_same_bits(patched, fresh.expected_hit_ratio(placement));

  // Two updates without an evaluation in between break the chain: rebuild.
  (void)scenario.topology.apply_user_moves({UserMove{1, Point{50, 60}}}, 1.0);
  (void)scenario.topology.apply_user_moves({UserMove{2, Point{70, 80}}}, 1.0);
  (void)evaluator.expected_hit_ratio(placement);
  EXPECT_EQ(evaluator.plan_stats().builds, 2u);
  EXPECT_EQ(evaluator.plan_stats().deltas, 1u);

  // A monolithic update is a full delta: rebuild.
  std::vector<Point> positions;
  for (UserId k = 0; k < scenario.topology.num_users(); ++k) {
    positions.push_back(scenario.topology.user_position(k));
  }
  scenario.topology.update_user_positions(std::move(positions));
  (void)evaluator.expected_hit_ratio(placement);
  EXPECT_EQ(evaluator.plan_stats().builds, 3u);
}

TEST(FadingKernels, BatchedBitIdenticalToScalarReference) {
  for (std::uint64_t seed : {0ull, 9ull, 17ull}) {
    Rng rng(seed);
    const Scenario scenario = build_scenario(varied_config(seed), rng);
    const core::PlacementProblem problem = scenario.problem();
    core::SolverContext context(rng.fork(5));
    const auto placement =
        core::SolverRegistry::instance().make("gen")->run(problem, context).placement;
    const EvalPlan plan(scenario.topology, scenario.library, scenario.requests);
    const Rng fading(seed + 100);
    const auto scalar = plan.fading_hit_ratio(placement, 48, fading, 1,
                                              FadingKernel::kScalarReference);
    expect_same_summary(scalar, plan.fading_hit_ratio(placement, 48, fading, 1,
                                                      FadingKernel::kBatched));
    expect_same_summary(scalar, plan.fading_hit_ratio(placement, 48, fading, 8,
                                                      FadingKernel::kBatched));
  }
}

TEST(MobilityStudy, IncrementalBitIdenticalToMonolithic) {
  ScenarioConfig config = varied_config(1);
  MobilityStudyConfig incremental;
  incremental.num_slots = 36;
  incremental.eval_every_slots = 6;
  incremental.fading_realizations = 12;
  incremental.threads = 2;
  incremental.first_solver = "gen";
  incremental.second_solver = "independent";
  MobilityStudyConfig monolithic = incremental;
  monolithic.incremental = false;

  Rng rng_a(5), rng_b(5);
  MobilityStudyTelemetry inc_telemetry, mono_telemetry;
  const auto inc = run_mobility_study(config, incremental, rng_a, &inc_telemetry);
  const auto mono = run_mobility_study(config, monolithic, rng_b, &mono_telemetry);
  ASSERT_EQ(inc.size(), mono.size());
  for (std::size_t p = 0; p < inc.size(); ++p) {
    expect_same_bits(inc[p].spec_hit_ratio, mono[p].spec_hit_ratio);
    expect_same_bits(inc[p].gen_hit_ratio, mono[p].gen_hit_ratio);
  }
  // Every evaluated slot was maintained: patched (or, under heavy structural
  // churn, rebuilt) on the incremental leg, rebuilt on the monolithic leg.
  EXPECT_EQ(inc_telemetry.topology_updates, 6u);
  EXPECT_EQ(inc_telemetry.plan_deltas + inc_telemetry.plan_builds, 6u);
  EXPECT_EQ(mono_telemetry.plan_builds, 6u);
  EXPECT_EQ(mono_telemetry.plan_deltas, 0u);
}

}  // namespace
}  // namespace trimcaching::sim
