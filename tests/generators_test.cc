#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/model/accuracy_model.h"
#include "src/model/family_builder.h"
#include "src/model/general_case_generator.h"
#include "src/model/lora_generator.h"
#include "src/model/special_case_generator.h"

namespace trimcaching::model {
namespace {

using support::Rng;

// -------------------------------------------------------------- FamilyBuilder

TEST(FamilyBuilder, PrefixSegmentsAndSpecificBlocks) {
  ModelLibrary lib;
  PrefixFamilySpec spec;
  spec.family_name = "fam";
  spec.layers = {{"l0", 10}, {"l1", 20}, {"l2", 30}, {"l3", 40}};
  spec.bytes_per_param = 4;
  spec.freeze_depths = {1, 3, 1};
  spec.model_names = {"a", "b", "c"};
  const auto ids = add_prefix_family(lib, spec);
  lib.finalize();
  ASSERT_EQ(ids.size(), 3u);
  // Distinct depths {1,3}: segment [0,1) = 40 B, segment [1,3) = 200 B.
  // a: seg1 + specific(l1..l3: 90*4=360) ; b: seg1+seg2 + specific(l3: 160);
  // c: same shape as a.
  EXPECT_EQ(lib.model_size(ids[0]), 40u + 360u);
  EXPECT_EQ(lib.model_size(ids[1]), 40u + 200u + 160u);
  EXPECT_EQ(lib.model_size(ids[2]), 40u + 360u);
  // Segment [0,1) is shared by all three; segment [1,3) only by b -> specific.
  EXPECT_EQ(lib.shared_blocks().size(), 1u);
  EXPECT_EQ(lib.dedup_size({ids[0], ids[2]}), 40u + 360u + 360u);
}

TEST(FamilyBuilder, DepthMustLeaveHeadTrainable) {
  ModelLibrary lib;
  PrefixFamilySpec spec;
  spec.family_name = "fam";
  spec.layers = {{"l0", 10}, {"l1", 20}};
  spec.freeze_depths = {2};
  spec.model_names = {"a"};
  EXPECT_THROW((void)add_prefix_family(lib, spec), std::invalid_argument);
}

TEST(FamilyBuilder, MismatchedInputsThrow) {
  ModelLibrary lib;
  PrefixFamilySpec spec;
  spec.layers = {{"l0", 10}};
  spec.freeze_depths = {0};
  spec.model_names = {"a", "b"};
  EXPECT_THROW((void)add_prefix_family(lib, spec), std::invalid_argument);
}

TEST(FamilyBuilder, ZeroDepthModelIsFullySpecific) {
  ModelLibrary lib;
  PrefixFamilySpec spec;
  spec.family_name = "fam";
  spec.layers = {{"l0", 10}, {"l1", 20}};
  spec.freeze_depths = {0, 1};
  spec.model_names = {"a", "b"};
  const auto ids = add_prefix_family(lib, spec);
  lib.finalize();
  EXPECT_EQ(lib.model_size(ids[0]), 120u);  // all layers specific
  EXPECT_EQ(lib.shared_part(ids[0]).count(), 0u);
}

// -------------------------------------------------------- Special-case library

TEST(SpecialCase, DefaultBuild) {
  Rng rng(1);
  SpecialCaseConfig config;
  config.models_per_family = 10;
  const auto lib = build_special_case_library(config, rng);
  EXPECT_EQ(lib.num_models(), 30u);
  // Each family contributes at most (distinct depths) shared prefix segments;
  // the total must be bounded by the freeze-range widths (13+25+21).
  EXPECT_LE(lib.shared_blocks().size(), 59u);
  EXPECT_GT(lib.shared_blocks().size(), 0u);
}

TEST(SpecialCase, SharingIsSubstantial) {
  Rng rng(2);
  SpecialCaseConfig config;
  config.models_per_family = 30;
  const auto lib = build_special_case_library(config, rng);
  const auto stats = lib.stats();
  // Bottom-layer freezing across 90 downstream models must save well over
  // half of the naive storage.
  EXPECT_GT(stats.sharing_ratio, 0.5);
}

TEST(SpecialCase, SharedPartsAreNestedPrefixesPerFamily) {
  Rng rng(3);
  SpecialCaseConfig config;
  config.models_per_family = 8;
  const auto lib = build_special_case_library(config, rng);
  // Within a family, any two shared parts must be inclusion-comparable.
  for (ModelId a = 0; a < lib.num_models(); ++a) {
    for (ModelId b = a + 1; b < lib.num_models(); ++b) {
      if (lib.model(a).family != lib.model(b).family) continue;
      const auto& pa = lib.shared_part(a);
      const auto& pb = lib.shared_part(b);
      EXPECT_TRUE(pa.is_subset_of(pb) || pb.is_subset_of(pa));
    }
  }
}

TEST(SpecialCase, ClosureIsProductOfChains) {
  Rng rng(4);
  SpecialCaseConfig config;
  config.models_per_family = 6;
  const auto lib = build_special_case_library(config, rng);
  // Count distinct depths per family via distinct shared-part sizes.
  std::map<std::string, std::set<std::size_t>> parts_per_family;
  for (ModelId i = 0; i < lib.num_models(); ++i) {
    if (lib.shared_part(i).any()) {
      parts_per_family[lib.model(i).family].insert(lib.shared_part(i).count());
    }
  }
  std::size_t expected = 1;
  for (const auto& [fam, parts] : parts_per_family) {
    (void)fam;
    expected *= parts.size() + 1;
  }
  EXPECT_EQ(lib.shared_combination_closure().size(), expected);
}

TEST(SpecialCase, ModelSizesMatchArchitectures) {
  Rng rng(5);
  SpecialCaseConfig config;
  config.models_per_family = 4;
  config.head_classes = 5;
  const auto lib = build_special_case_library(config, rng);
  for (ModelId i = 0; i < lib.num_models(); ++i) {
    const std::string& family = lib.model(i).family;
    const ResNetArch arch = family == "resnet18"   ? ResNetArch::kResNet18
                            : family == "resnet34" ? ResNetArch::kResNet34
                                                   : ResNetArch::kResNet50;
    EXPECT_EQ(lib.model_size(i), 4u * resnet_param_count(arch, 5))
        << lib.model(i).name;
  }
}

TEST(SpecialCase, ConfigValidation) {
  Rng rng(6);
  SpecialCaseConfig config;
  config.models_per_family = 0;
  EXPECT_THROW((void)build_special_case_library(config, rng), std::invalid_argument);
  config = SpecialCaseConfig{};
  config.archs.clear();
  EXPECT_THROW((void)build_special_case_library(config, rng), std::invalid_argument);
}

// -------------------------------------------------------- General-case library

TEST(GeneralCase, DefaultBuildIs300Models) {
  Rng rng(7);
  const GeneralCaseConfig config;
  const auto lib = build_general_case_library(config, rng);
  // 20 superclasses x 5 classes x 3 architectures.
  EXPECT_EQ(lib.num_models(), 300u);
}

TEST(GeneralCase, SharedBlocksGrowWithScale) {
  Rng rng(8);
  GeneralCaseConfig small = reduced_general_case_config();
  const auto lib_small = build_general_case_library(small, rng);
  Rng rng2(8);
  const GeneralCaseConfig full;
  const auto lib_full = build_general_case_library(full, rng2);
  EXPECT_GT(lib_full.shared_blocks().size(), lib_small.shared_blocks().size());
  // This is the paper's general-case signature: β scales with the library.
  EXPECT_GT(lib_full.shared_blocks().size(), 50u);
}

TEST(GeneralCase, LineagesDoNotShareAcrossRoots) {
  Rng rng(9);
  const auto lib = build_general_case_library(reduced_general_case_config(), rng);
  for (ModelId a = 0; a < lib.num_models(); ++a) {
    for (ModelId b = a + 1; b < lib.num_models(); ++b) {
      if (lib.model(a).family == lib.model(b).family) continue;
      EXPECT_FALSE(lib.shared_part(a).intersects(lib.shared_part(b)))
          << lib.model(a).name << " vs " << lib.model(b).name;
    }
  }
}

TEST(GeneralCase, ConfigValidation) {
  Rng rng(10);
  GeneralCaseConfig config;
  config.min_freeze_fraction = 0.9;
  config.max_freeze_fraction = 0.5;
  EXPECT_THROW((void)build_general_case_library(config, rng), std::invalid_argument);
  config = GeneralCaseConfig{};
  config.lineages.clear();
  config.standalone_superclasses.clear();
  EXPECT_THROW((void)build_general_case_library(config, rng), std::invalid_argument);
}

// ------------------------------------------------------------------ LoRA library

TEST(Lora, StructureAndSharing) {
  Rng rng(11);
  LoraLibraryConfig config;
  config.num_foundations = 2;
  config.adapters_per_foundation = 5;
  const auto lib = build_lora_library(config, rng);
  EXPECT_EQ(lib.num_models(), 10u);
  EXPECT_EQ(lib.shared_blocks().size(), 2u);  // the two foundations
  const auto stats = lib.stats();
  // >99% of parameters are shared (PEFT regime).
  EXPECT_GT(stats.sharing_ratio, 0.7);
  // Any two models of the same foundation share exactly the foundation block.
  EXPECT_EQ(lib.dedup_size({0, 1}),
            lib.model_size(0) + lib.specific_size(1));
}

TEST(Lora, ConfigValidation) {
  Rng rng(12);
  LoraLibraryConfig config;
  config.adapter_fraction = 1.5;
  EXPECT_THROW((void)build_lora_library(config, rng), std::invalid_argument);
  config = LoraLibraryConfig{};
  config.num_foundations = 0;
  EXPECT_THROW((void)build_lora_library(config, rng), std::invalid_argument);
}

// ------------------------------------------------------------- Accuracy curve

TEST(AccuracyModel, CalibratedEndpoints) {
  const auto curves = paper_fig1_curves();
  ASSERT_EQ(curves.size(), 2u);
  const auto& animal = curves[0];
  const auto& transport = curves[1];
  EXPECT_EQ(animal.task, "animal");
  // Zero frozen layers: full fine-tuning accuracy.
  EXPECT_DOUBLE_EQ(animal.accuracy(0.0), animal.full_finetune_accuracy);
  // At the paper's reference depth (97 layers = 90%): 5.2% / 4.05% drops.
  EXPECT_NEAR(animal.full_finetune_accuracy - animal.accuracy(97.0), 0.052, 1e-9);
  EXPECT_NEAR(transport.full_finetune_accuracy - transport.accuracy(97.0), 0.0405,
              1e-9);
  // Average degradation ~4.7% as quoted in §I.
  const double avg = ((animal.full_finetune_accuracy - animal.accuracy(97.0)) +
                      (transport.full_finetune_accuracy - transport.accuracy(97.0))) /
                     2.0;
  EXPECT_NEAR(avg, 0.047, 0.002);
}

TEST(AccuracyModel, MonotoneDegradation) {
  for (const auto& curve : paper_fig1_curves()) {
    double prev = curve.accuracy(0);
    for (int f = 1; f <= 97; ++f) {
      const double acc = curve.accuracy(f);
      EXPECT_LE(acc, prev + 1e-12);
      prev = acc;
    }
  }
}

TEST(AccuracyModel, FlatStart) {
  // The curve must be flat near zero (shape > 1): the first 40% of layers
  // cost less than 0.5% accuracy.
  for (const auto& curve : paper_fig1_curves()) {
    EXPECT_LT(curve.full_finetune_accuracy - curve.accuracy(40.0), 0.005);
  }
}

TEST(AccuracyModel, NegativeDepthRejected) {
  EXPECT_THROW((void)paper_fig1_curves()[0].accuracy(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace trimcaching::model
