#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/support/bitset.h"
#include "src/support/parallel.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/table.h"
#include "src/support/units.h"

namespace trimcaching::support {
namespace {

// ---------------------------------------------------------------- DynamicBitset

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW(b.reset(10), std::out_of_range);
  EXPECT_THROW((void)b.test(10), std::out_of_range);
}

TEST(DynamicBitset, UnionIntersectionDifference) {
  DynamicBitset a(130), b(130);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(129);
  DynamicBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(u.test(1) && u.test(100) && u.test(129));
  DynamicBitset n = a & b;
  EXPECT_EQ(n.count(), 1u);
  EXPECT_TRUE(n.test(100));
  DynamicBitset d = a;
  d -= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(DynamicBitset, SizeMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
}

TEST(DynamicBitset, SubsetSemantics) {
  DynamicBitset a(80), b(80);
  a.set(3);
  b.set(3);
  b.set(70);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  DynamicBitset empty(80);
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(DynamicBitset, Intersects) {
  DynamicBitset a(64), b(64);
  a.set(5);
  b.set(6);
  EXPECT_FALSE(a.intersects(b));
  b.set(5);
  EXPECT_TRUE(a.intersects(b));
}

TEST(DynamicBitset, ForEachAscending) {
  DynamicBitset b(200);
  const std::vector<std::size_t> expected = {0, 64, 65, 128, 199};
  for (const auto idx : expected) b.set(idx);
  EXPECT_EQ(b.to_indices(), expected);
}

TEST(DynamicBitset, EqualityAndHash) {
  DynamicBitset a(64), b(64);
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(8);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, ClearKeepsSize) {
  DynamicBitset b(33);
  b.set(32);
  b.clear();
  EXPECT_EQ(b.size(), 33u);
  EXPECT_TRUE(b.none());
}

// ------------------------------------------------------------------------ Rng

TEST(Rng, UniformInRange) {
  Rng rng(42);
  for (int t = 0; t < 1000; ++t) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int t = 0; t < 2000; ++t) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int t = 0; t < 100; ++t) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(7);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  bool any_diff = false;
  for (int t = 0; t < 10; ++t) {
    if (f1.uniform(0, 1) != f2.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, ExponentialMeanApproximatelyInverseRate) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int t = 0; t < n; ++t) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, AtIsCounterBased) {
  // Same (stream, index) from equal-seeded generators -> same stream.
  Rng a(7), b(7);
  Rng d1 = a.at(3, 5);
  Rng d2 = b.at(3, 5);
  for (int t = 0; t < 20; ++t) {
    EXPECT_DOUBLE_EQ(d1.uniform(0, 1), d2.uniform(0, 1));
  }
}

TEST(Rng, AtDoesNotDependOnEngineState) {
  // Unlike fork(), at() must be stable however much the parent was used.
  Rng a(7), b(7);
  for (int t = 0; t < 100; ++t) (void)b.uniform(0, 1);
  Rng d1 = a.at(1, 2);
  Rng d2 = b.at(1, 2);
  EXPECT_DOUBLE_EQ(d1.uniform(0, 1), d2.uniform(0, 1));
}

TEST(Rng, AtDoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.at(1, 2);
  (void)a.at(9, 9);
  EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, AtStreamsAndIndicesDiffer) {
  const Rng a(7);
  Rng s00 = a.at(0, 0);
  Rng s01 = a.at(0, 1);
  Rng s10 = a.at(1, 0);
  const double x = s00.uniform(0, 1);
  EXPECT_NE(x, s01.uniform(0, 1));
  EXPECT_NE(x, s10.uniform(0, 1));
}

// ---------------------------------------------------------------------- Stats

TEST(RunningStats, MeanVarianceMatchClosedForm) {
  RunningStats rs;
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 2.5);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (t < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Summarize, Basics) {
  const Summary s = summarize({2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

// ---------------------------------------------------------------------- Units

TEST(Units, Conversions) {
  EXPECT_EQ(megabytes(1.5), 1'500'000u);
  EXPECT_EQ(gigabytes(2.0), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(bits(10), 80.0);
  EXPECT_DOUBLE_EQ(as_gigabytes(gigabytes(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(mhz(400), 4e8);
  EXPECT_DOUBLE_EQ(gbps(10), 1e10);
}

TEST(Units, DbmRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(43.0), 19.9526, 1e-3);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(17.0)), 17.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
}

// ---------------------------------------------------------------------- Table

TEST(Table, TextAndCsv) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"33", "4"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("33"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,bb\n1,2\n33,4\n");
}

TEST(Table, CsvQuotesCellsWithSeparators) {
  Table t({"solver", "x"});
  t.add_row({"spec:mode=weight,states=2048", "1"});
  t.add_row({"say \"hi\"", "2"});
  EXPECT_EQ(t.to_csv(),
            "solver,x\n\"spec:mode=weight,states=2048\",1\n\"say \"\"hi\"\"\",2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
}

// ------------------------------------------------------------------- Parallel

TEST(Parallel, ResolveThreads) {
  EXPECT_GE(hardware_threads(), 1u);
  EXPECT_EQ(resolve_threads(0), hardware_threads());
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(16), 16u);  // oversubscription allowed
}

TEST(Parallel, ForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    std::vector<int> visits(1000, 0);
    parallel_for(visits.size(), threads, [&](std::size_t i) { ++visits[i]; });
    for (const int v : visits) EXPECT_EQ(v, 1) << "threads=" << threads;
  }
}

TEST(Parallel, ForHandlesEmptyAndSingle) {
  int calls = 0;
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, NestedCallsRunSerially) {
  std::vector<int> visits(64, 0);
  parallel_for(8, 4, [&](std::size_t outer) {
    EXPECT_TRUE(inside_parallel_region());
    // Nested loop must not deadlock and must still cover its range.
    parallel_for(8, 4, [&](std::size_t inner) { ++visits[outer * 8 + inner]; });
  });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(Parallel, ExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, DeterministicPerIndexRngPattern) {
  // The engine's idiom: per-index counter-based streams + per-index slots
  // give bit-identical outputs for any thread count.
  const Rng base(99);
  auto run = [&base](std::size_t threads) {
    std::vector<double> out(256);
    parallel_for(out.size(), threads, [&](std::size_t i) {
      Rng rng = base.at(42, i);
      out[i] = rng.uniform(0, 1) + rng.exponential(1.0);
    });
    return out;
  };
  const auto serial = run(1);
  const auto parallel4 = run(4);
  const auto parallel13 = run(13);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel4[i]);
    EXPECT_DOUBLE_EQ(serial[i], parallel13[i]);
  }
}

}  // namespace
}  // namespace trimcaching::support
